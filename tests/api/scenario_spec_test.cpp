// ScenarioSpec: JSON round-trips must be lossless, and malformed or
// contradictory specs must be rejected with std::invalid_argument before
// any engine is built.
#include "consensus/api/scenario.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace consensus::api {
namespace {

ScenarioSpec full_spec() {
  ScenarioSpec spec;
  spec.protocol = "median";
  spec.n = 4096;
  spec.k = 8;
  spec.init.kind = "biased";
  spec.init.param = 0.05;
  spec.topology = TopologySpec{.kind = "torus", .rows = 64};
  spec.zealots = ZealotSpec{.opinion = 1, .count = 40};
  spec.engine = EngineChoice::kAgent;
  spec.engine_threads = 2;
  spec.max_rounds = 5000;
  spec.seed = 7;
  return spec;
}

TEST(ScenarioSpec, DefaultSpecIsValid) {
  ScenarioSpec spec;
  EXPECT_NO_THROW(spec.validate());
  EXPECT_EQ(resolve_engine(spec), EngineChoice::kCounting);
}

TEST(ScenarioSpec, JsonRoundTripIsLossless) {
  // Default, fully-loaded, adversarial, and explicit-counts specs all
  // survive spec -> JSON text -> spec exactly.
  std::vector<ScenarioSpec> specs;
  specs.emplace_back();
  specs.push_back(full_spec());
  {
    ScenarioSpec adv;
    adv.protocol = "h-majority:5";
    adv.adversary = AdversarySpec{"attack-leader", 12};
    adv.generic_only = true;
    adv.engine = EngineChoice::kCounting;
    specs.push_back(adv);
  }
  {
    ScenarioSpec counts;
    counts.set_counts({100, 50, 0, 25});
    counts.engine = EngineChoice::kAsync;
    specs.push_back(counts);
  }
  {
    ScenarioSpec sparse;
    sparse.dense_only = true;
    sparse.checkpoint_every_rounds = 500;
    sparse.engine = EngineChoice::kCounting;
    specs.push_back(sparse);
  }
  {
    ScenarioSpec dense_agent;
    dense_agent.engine = EngineChoice::kAgent;
    dense_agent.mean_field_fast_path = false;
    specs.push_back(dense_agent);
  }
  for (const ScenarioSpec& spec : specs) {
    const ScenarioSpec reparsed =
        ScenarioSpec::from_json_text(spec.to_json_text());
    EXPECT_EQ(reparsed, spec);
    // And the rendered text is a fixed point.
    EXPECT_EQ(reparsed.to_json_text(), spec.to_json_text());
  }
}

TEST(ScenarioSpec, FromJsonFillsDefaults) {
  const ScenarioSpec spec =
      ScenarioSpec::from_json_text(R"({"protocol": "voter", "n": 1000})");
  EXPECT_EQ(spec.protocol, "voter");
  EXPECT_EQ(spec.n, 1000u);
  EXPECT_EQ(spec.k, 16u);  // default
  EXPECT_EQ(spec.engine, EngineChoice::kAuto);
  EXPECT_FALSE(spec.topology.has_value());
}

TEST(ScenarioSpec, RejectsUnknownKeysAndKinds) {
  // Typos anywhere in the document are hard errors, not silent defaults.
  EXPECT_THROW(ScenarioSpec::from_json_text(R"({"protocl": "voter"})"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::from_json_text(
                   R"({"init": {"kind": "balanced", "margin": 0.1}})"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::from_json_text(R"({"protocol": "no-such"})"),
               std::invalid_argument);
  EXPECT_THROW(
      ScenarioSpec::from_json_text(R"({"init": {"kind": "no-such"}})"),
      std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::from_json_text(
                   R"({"topology": {"kind": "moebius"}})"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::from_json_text(
                   R"({"adversary": {"kind": "bribe", "budget": 3}})"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::from_json_text("[]"), std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::from_json_text("not json"),
               std::invalid_argument);
  // 32-bit fields must reject out-of-range values, not truncate them into
  // a different (but self-consistent) scenario.
  EXPECT_THROW(ScenarioSpec::from_json_text(R"({"k": 4294967298})"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::from_json_text(
                   R"({"zealots": {"opinion": 4294967296, "count": 1}})"),
               std::invalid_argument);
}

TEST(ScenarioSpec, ValidateCatchesInconsistentFields) {
  {
    ScenarioSpec spec;
    spec.n = 0;
    EXPECT_THROW(spec.validate(), std::invalid_argument);
  }
  {
    ScenarioSpec spec;
    spec.n = 8;
    spec.k = 16;  // n < k
    EXPECT_THROW(spec.validate(), std::invalid_argument);
  }
  {
    ScenarioSpec spec;
    spec.init.kind = "counts";
    spec.init.counts = {10, 10};  // n/k left inconsistent
    EXPECT_THROW(spec.validate(), std::invalid_argument);
  }
  {
    ScenarioSpec spec;
    spec.init.kind = "biased";
    spec.init.param = 1.5;
    EXPECT_THROW(spec.validate(), std::invalid_argument);
  }
  {
    ScenarioSpec spec;
    spec.topology = TopologySpec{.kind = "torus", .rows = 7};  // 7 ∤ n
    spec.n = 100;
    spec.k = 4;
    EXPECT_THROW(spec.validate(), std::invalid_argument);
  }
  {
    ScenarioSpec spec;
    spec.zealots = ZealotSpec{.opinion = 99, .count = 1};
    EXPECT_THROW(spec.validate(), std::invalid_argument);
  }
  {
    // engine_threads sizes a real pool; wire-delivered specs must not be
    // able to crash the worker at ThreadPool construction.
    ScenarioSpec spec;
    spec.engine = EngineChoice::kAgent;
    spec.engine_threads = 4'000'000'000;
    EXPECT_THROW(spec.validate(), std::invalid_argument);
  }
}

TEST(ScenarioSpec, ResolveEngineAutoRules) {
  {
    // Plain K_n scenario → counting (fast paths).
    ScenarioSpec spec;
    EXPECT_EQ(resolve_engine(spec), EngineChoice::kCounting);
  }
  {
    // Non-complete topology → agent.
    ScenarioSpec spec;
    spec.topology = TopologySpec{.kind = "cycle"};
    EXPECT_EQ(resolve_engine(spec), EngineChoice::kAgent);
  }
  {
    // Zealots → agent even on K_n.
    ScenarioSpec spec;
    spec.zealots = ZealotSpec{.opinion = 0, .count = 5};
    EXPECT_EQ(resolve_engine(spec), EngineChoice::kAgent);
  }
  {
    // Adversary → counting.
    ScenarioSpec spec;
    spec.adversary = AdversarySpec{"random-noise", 3};
    EXPECT_EQ(resolve_engine(spec), EngineChoice::kCounting);
  }
}

TEST(ScenarioSpec, ResolveEngineRejectsContradictions) {
  {
    // Counting engine cannot host a cycle.
    ScenarioSpec spec;
    spec.engine = EngineChoice::kCounting;
    spec.topology = TopologySpec{.kind = "cycle"};
    EXPECT_THROW(resolve_engine(spec), std::invalid_argument);
  }
  {
    // Zealots need the agent engine.
    ScenarioSpec spec;
    spec.engine = EngineChoice::kAsync;
    spec.zealots = ZealotSpec{.opinion = 0, .count = 5};
    EXPECT_THROW(resolve_engine(spec), std::invalid_argument);
  }
  {
    // Adversaries act on counts only.
    ScenarioSpec spec;
    spec.engine = EngineChoice::kAgent;
    spec.adversary = AdversarySpec{"random-noise", 3};
    EXPECT_THROW(resolve_engine(spec), std::invalid_argument);
  }
  {
    // Adversary + zealots is unsatisfiable (no engine has both).
    ScenarioSpec spec;
    spec.adversary = AdversarySpec{"random-noise", 3};
    spec.zealots = ZealotSpec{.opinion = 0, .count = 5};
    EXPECT_THROW(resolve_engine(spec), std::invalid_argument);
  }
  {
    // Pairwise fits single-sample protocols only (3-majority draws 3).
    ScenarioSpec spec;
    spec.engine = EngineChoice::kPairwise;
    EXPECT_THROW(resolve_engine(spec), std::invalid_argument);
  }
  {
    // ... but the voter model fits.
    ScenarioSpec spec;
    spec.protocol = "voter";
    spec.engine = EngineChoice::kPairwise;
    EXPECT_EQ(resolve_engine(spec), EngineChoice::kPairwise);
  }
  {
    // dense_only is a counting-engine diagnostic, like generic_only.
    ScenarioSpec spec;
    spec.engine = EngineChoice::kAgent;
    spec.dense_only = true;
    EXPECT_THROW(resolve_engine(spec), std::invalid_argument);
  }
  {
    // generic_only already hides the dense paths; the pair is ambiguous.
    ScenarioSpec spec;
    spec.engine = EngineChoice::kCounting;
    spec.generic_only = true;
    spec.dense_only = true;
    EXPECT_THROW(resolve_engine(spec), std::invalid_argument);
  }
  {
    // Opting out of the mean-field fast path only means something on the
    // agent engine.
    ScenarioSpec spec;
    spec.engine = EngineChoice::kCounting;
    spec.mean_field_fast_path = false;
    EXPECT_THROW(resolve_engine(spec), std::invalid_argument);
    spec.engine = EngineChoice::kAgent;
    EXPECT_EQ(resolve_engine(spec), EngineChoice::kAgent);
  }
}

TEST(ScenarioSpec, StructuredTopologyRoundTripsAndValidates) {
  // The SBM family descriptor fields survive JSON round-trips.
  ScenarioSpec spec;
  spec.n = 100000;
  spec.topology = TopologySpec{
      .kind = "sbm", .blocks = 16, .intra_p = 0.001, .inter_p = 0.0001};
  EXPECT_NO_THROW(spec.validate());
  const ScenarioSpec reparsed =
      ScenarioSpec::from_json_text(spec.to_json_text());
  EXPECT_EQ(reparsed, spec);
  EXPECT_EQ(reparsed.topology->blocks, 16u);
  EXPECT_DOUBLE_EQ(reparsed.topology->intra_p, 0.001);

  // Implicit regular kinds: no n*degree parity constraint (d-out model).
  ScenarioSpec reg;
  reg.n = 101;  // odd n, odd degree would be invalid for "random-regular"
  reg.topology = TopologySpec{.kind = "random-regular-implicit", .degree = 3};
  EXPECT_NO_THROW(reg.validate());
  EXPECT_EQ(ScenarioSpec::from_json_text(reg.to_json_text()), reg);
  reg.topology->kind = "random-regular-annealed";
  EXPECT_NO_THROW(reg.validate());

  // Bad family parameters are hard errors.
  for (const char* kind : {"sbm", "sbm-explicit"}) {
    ScenarioSpec bad;
    bad.topology = TopologySpec{.kind = kind};
    bad.topology->blocks = 0;  // need >= 1
    bad.topology->intra_p = 0.5;
    EXPECT_THROW(bad.validate(), std::invalid_argument) << kind;
    bad.topology->blocks = 8192;  // over the wire-safety cap
    EXPECT_THROW(bad.validate(), std::invalid_argument) << kind;
    bad.topology->blocks = 4;
    bad.topology->intra_p = 0.0;  // intra_p in (0, 1]
    EXPECT_THROW(bad.validate(), std::invalid_argument) << kind;
    bad.topology->intra_p = 0.5;
    bad.topology->inter_p = -0.1;  // inter_p in [0, 1]
    EXPECT_THROW(bad.validate(), std::invalid_argument) << kind;
  }
  {
    ScenarioSpec bad;
    bad.topology = TopologySpec{.kind = "random-regular-implicit"};
    EXPECT_THROW(bad.validate(), std::invalid_argument);  // degree == 0
  }
}

TEST(ScenarioSpec, ResolveEngineStructuredRules) {
  {
    // Annealed SBM auto-routes to the block-counting engine.
    ScenarioSpec spec;
    spec.topology = TopologySpec{
        .kind = "sbm", .blocks = 8, .intra_p = 0.01, .inter_p = 0.001};
    EXPECT_EQ(resolve_engine(spec), EngineChoice::kBlock);
    // ... but an explicit agent request on the same chain is honoured
    // (the cross-validation configuration).
    spec.engine = EngineChoice::kAgent;
    EXPECT_EQ(resolve_engine(spec), EngineChoice::kAgent);
    // Zealots need per-vertex state, so they win over the block route.
    spec.engine = EngineChoice::kAuto;
    spec.zealots = ZealotSpec{.opinion = 0, .count = 5};
    EXPECT_EQ(resolve_engine(spec), EngineChoice::kAgent);
  }
  {
    // The quenched CSR sample is a plain agent topology.
    ScenarioSpec spec;
    spec.topology = TopologySpec{
        .kind = "sbm-explicit", .blocks = 8, .intra_p = 0.01,
        .inter_p = 0.001};
    EXPECT_EQ(resolve_engine(spec), EngineChoice::kAgent);
    // The block engine is exact only for the ANNEALED model.
    spec.engine = EngineChoice::kBlock;
    EXPECT_THROW(resolve_engine(spec), std::invalid_argument);
  }
  {
    // Annealed regular == model graph ⇒ counting; quenched implicit is a
    // real (vertex-dependent) topology ⇒ agent.
    ScenarioSpec spec;
    spec.topology =
        TopologySpec{.kind = "random-regular-annealed", .degree = 8};
    EXPECT_EQ(resolve_engine(spec), EngineChoice::kCounting);
    spec.topology->kind = "random-regular-implicit";
    EXPECT_EQ(resolve_engine(spec), EngineChoice::kAgent);
  }
  {
    // Block without an sbm topology is a contradiction.
    ScenarioSpec spec;
    spec.engine = EngineChoice::kBlock;
    EXPECT_THROW(resolve_engine(spec), std::invalid_argument);
  }
}

TEST(ScenarioSpec, ConfigurationModelTopologyRoundTripsAndValidates) {
  // Explicit-histogram form: degrees + class_sizes survive JSON exactly.
  ScenarioSpec spec;
  spec.n = 150;
  spec.k = 4;
  spec.topology = TopologySpec{.kind = "configuration-model",
                               .degrees = {3, 8, 40},
                               .class_sizes = {100, 40, 10}};
  EXPECT_NO_THROW(spec.validate());
  const ScenarioSpec reparsed =
      ScenarioSpec::from_json_text(spec.to_json_text());
  EXPECT_EQ(reparsed, spec);
  EXPECT_EQ(reparsed.topology->degrees, (std::vector<std::uint64_t>{3, 8, 40}));
  EXPECT_EQ(reparsed.to_json_text(), spec.to_json_text());  // fixed point

  // Power-law form: alpha/d_min/d_max survive JSON exactly, on every kind
  // in the family.
  for (const char* kind : {"configuration-model",
                           "configuration-model-annealed",
                           "configuration-model-explicit"}) {
    ScenarioSpec pl;
    pl.n = 100000;
    pl.topology = TopologySpec{
        .kind = kind, .alpha = 2.5, .d_min = 3, .d_max = 1024};
    EXPECT_NO_THROW(pl.validate()) << kind;
    EXPECT_EQ(ScenarioSpec::from_json_text(pl.to_json_text()), pl) << kind;
  }

  // Exactly one histogram form: both or neither are hard errors.
  {
    ScenarioSpec bad;
    bad.n = 150;
    bad.topology = TopologySpec{.kind = "configuration-model"};
    EXPECT_THROW(bad.validate(), std::invalid_argument);  // neither form
    bad.topology->degrees = {3, 8};
    bad.topology->class_sizes = {100, 50};
    bad.topology->alpha = 2.5;
    bad.topology->d_min = 3;
    bad.topology->d_max = 8;
    EXPECT_THROW(bad.validate(), std::invalid_argument);  // both forms
  }
  // Explicit-form shape errors.
  {
    ScenarioSpec bad;
    bad.n = 150;
    bad.topology = TopologySpec{.kind = "configuration-model",
                                .degrees = {3, 8},
                                .class_sizes = {100}};
    EXPECT_THROW(bad.validate(), std::invalid_argument);  // length mismatch
    bad.topology->class_sizes = {100, 49};
    EXPECT_THROW(bad.validate(), std::invalid_argument);  // sums to 149 != n
    bad.topology->degrees = {8, 3};
    bad.topology->class_sizes = {100, 50};
    EXPECT_THROW(bad.validate(), std::invalid_argument);  // not increasing
    bad.topology->degrees = {0, 3};
    EXPECT_THROW(bad.validate(), std::invalid_argument);  // zero degree
    bad.topology->degrees = {3, 200};
    EXPECT_THROW(bad.validate(), std::invalid_argument);  // degree > n
  }
  // Power-law parameter errors.
  {
    ScenarioSpec bad;
    bad.n = 1000;
    bad.topology = TopologySpec{
        .kind = "configuration-model-annealed", .alpha = -1.0, .d_min = 3,
        .d_max = 64};
    EXPECT_THROW(bad.validate(), std::invalid_argument);  // alpha <= 0
    bad.topology->alpha = 2.5;
    bad.topology->d_min = 0;
    EXPECT_THROW(bad.validate(), std::invalid_argument);  // d_min == 0
    bad.topology->d_min = 65;
    EXPECT_THROW(bad.validate(), std::invalid_argument);  // d_min > d_max
    bad.topology->d_min = 3;
    bad.topology->d_max = 2000;
    EXPECT_THROW(bad.validate(), std::invalid_argument);  // d_max > n
  }
}

TEST(ScenarioSpec, ResolveEngineConfigurationModelRules) {
  {
    // The annealed configuration model auto-routes to the degree-class
    // counting engine.
    ScenarioSpec spec;
    spec.n = 150;
    spec.topology = TopologySpec{.kind = "configuration-model-annealed",
                                 .degrees = {3, 8, 40},
                                 .class_sizes = {100, 40, 10}};
    EXPECT_EQ(resolve_engine(spec), EngineChoice::kDegreeClass);
    // ... but an explicit agent request on the same chain is honoured
    // (the cross-validation configuration).
    spec.engine = EngineChoice::kAgent;
    EXPECT_EQ(resolve_engine(spec), EngineChoice::kAgent);
    // Zealots need per-vertex state, so they win over the auto route.
    spec.engine = EngineChoice::kAuto;
    spec.zealots = ZealotSpec{.opinion = 0, .count = 5};
    EXPECT_EQ(resolve_engine(spec), EngineChoice::kAgent);
  }
  {
    // Quenched kinds (implicit stub-matching and explicit CSR) are plain
    // agent topologies.
    for (const char* kind :
         {"configuration-model", "configuration-model-explicit"}) {
      ScenarioSpec spec;
      spec.n = 150;
      spec.topology = TopologySpec{.kind = kind,
                                   .degrees = {3, 8, 40},
                                   .class_sizes = {100, 40, 10}};
      EXPECT_EQ(resolve_engine(spec), EngineChoice::kAgent) << kind;
      // The degree-class engine is exact only for the ANNEALED model.
      spec.engine = EngineChoice::kDegreeClass;
      EXPECT_THROW(resolve_engine(spec), std::invalid_argument) << kind;
    }
  }
  {
    // Degree-class without a configuration-model topology at all.
    ScenarioSpec spec;
    spec.engine = EngineChoice::kDegreeClass;
    EXPECT_THROW(resolve_engine(spec), std::invalid_argument);
  }
}

TEST(ScenarioSpec, SetCountsKeepsInvariants) {
  ScenarioSpec spec;
  spec.set_counts({30, 20, 10});
  EXPECT_EQ(spec.n, 60u);
  EXPECT_EQ(spec.k, 3u);
  EXPECT_EQ(spec.init.kind, "counts");
  EXPECT_NO_THROW(spec.validate());
}

}  // namespace
}  // namespace consensus::api
