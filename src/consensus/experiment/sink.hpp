// Streaming result pipeline for sweeps: every finished trial is emitted to
// a chain of `ResultSink`s the moment it completes, instead of being
// buffered until the whole sweep ends. This is what makes long sweeps
// servable (progress + partial artifacts while running) and resumable (the
// JSONL manifest is flushed per trial, so a killed sweep leaves a complete
// prefix that `SweepResume` replays).
//
// Sinks are invoked serialized (under the sweep's emission lock), in
// completion order — which is nondeterministic under parallelism. Anything
// that must be deterministic (the aggregate table) therefore slots records
// by (point, replication) and reduces in replication order at the end
// (`PointStatsSink`), so aggregate artifacts are byte-identical for every
// thread count and for interrupted-then-resumed runs.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "consensus/experiment/sweep.hpp"
#include "consensus/support/csv.hpp"
#include "consensus/support/json.hpp"
#include "consensus/support/metrics.hpp"

namespace consensus::exp {

/// One completed (point, replication) trial. `replayed` marks records
/// re-emitted from a resume manifest rather than freshly computed; the
/// JSONL sink skips them (they are already in the manifest being appended
/// to), aggregation sinks treat them like any other record.
struct TrialRecord {
  std::size_t point_index = 0;
  std::size_t replication = 0;
  std::uint64_t seed = 0;
  bool replayed = false;
  core::RunResult result;
};

class ResultSink {
 public:
  virtual ~ResultSink() = default;

  /// Called once per finished trial; never concurrently (the sweep
  /// serializes emission). Replayed records arrive before any live one.
  virtual void on_trial(const TrialRecord& record) = 0;

  /// Called once after the last trial of the sweep.
  virtual void on_finish() {}
};

/// Lossless JSON encoding of a trial record (one manifest line). Seeds are
/// encoded as decimal strings: they use the full 64-bit range and JSON
/// integers are signed. `record_from_json(record_to_json(r)) == r`
/// bit-exactly, doubles included (support::Json renders doubles losslessly)
/// — resume depends on this.
support::Json record_to_json(const TrialRecord& record);
TrialRecord record_from_json(const support::Json& json);

/// Appends one JSON object per trial to `path`, flushing per line so a
/// killed sweep leaves a complete, parseable prefix. Open with
/// `append = true` when resuming onto an existing manifest; `durable`
/// additionally fsyncs after every line (the serving daemon's manifests —
/// a crash after on_trial returns can no longer lose that trial). Each
/// line write passes the "sink.flush" FaultInjector hook, so chaos tests
/// can tear a manifest mid-line deterministically.
class JsonlSink final : public ResultSink {
 public:
  explicit JsonlSink(const std::string& path, bool append = false,
                     bool durable = false);
  ~JsonlSink() override;

  JsonlSink(const JsonlSink&) = delete;
  JsonlSink& operator=(const JsonlSink&) = delete;

  void on_trial(const TrialRecord& record) override;

 private:
  std::FILE* out_ = nullptr;
  bool durable_ = false;
};

/// Per-trial CSV rows (same fields as the manifest, spreadsheet-friendly).
/// Optional `labels` (one per point) adds a human-readable point column.
class CsvTrialSink final : public ResultSink {
 public:
  explicit CsvTrialSink(const std::string& path,
                        std::vector<std::string> labels = {});

  void on_trial(const TrialRecord& record) override;

 private:
  support::CsvWriter csv_;
  std::vector<std::string> labels_;
};

/// Deterministic aggregation into one PointStats per point: records are
/// slotted by (point, replication) and reduced in replication order at
/// on_finish, so `stats()` does not depend on completion order.
class PointStatsSink final : public ResultSink {
 public:
  PointStatsSink(std::size_t num_points, std::size_t replications);

  void on_trial(const TrialRecord& record) override;
  void on_finish() override;

  /// Valid after on_finish. Points whose trials were all skipped aggregate
  /// to an empty PointStats (replications == 0) — no division by zero.
  const std::vector<PointStats>& stats() const noexcept { return stats_; }

 private:
  std::size_t num_points_;
  std::size_t replications_;
  std::vector<core::RunResult> results_;  // point-major [point][replication]
  std::vector<std::uint8_t> seen_;
  std::vector<PointStats> stats_;
};

/// Console progress: one line every `every` completed trials (and on the
/// last one). Replayed records are counted but reported as "replayed".
class ProgressSink final : public ResultSink {
 public:
  ProgressSink(std::size_t total_trials, std::ostream& out = std::cerr,
               std::size_t every = 1);

  void on_trial(const TrialRecord& record) override;

 private:
  std::size_t total_;
  std::size_t done_ = 0;
  std::size_t replayed_ = 0;
  std::ostream* out_;
  std::size_t every_;
};

/// Streams per-trial counters into a support::Metrics registry:
/// `sweep_trials_done`, `sweep_trials_replayed`, `sweep_rounds_total`, and
/// `sweep_consensus_reached`. The serving daemon attaches one per job (its
/// /metrics registry); the CLI's `sweep --progress` prints the snapshot
/// with wall-clock rates at the end.
class MetricsTrialSink final : public ResultSink {
 public:
  explicit MetricsTrialSink(support::Metrics& metrics) : metrics_(&metrics) {}

  void on_trial(const TrialRecord& record) override;

 private:
  support::Metrics* metrics_;
};

/// The sweep's aggregate table as a CSV artifact: one row per point.
/// `labels` must have one entry per stats entry (pass point labels from a
/// SweepSpec, or synthesized "point<i>" names). Written via temp-file +
/// fsync + atomic rename (support::write_file_durable), so a crash
/// mid-write never leaves a torn CSV under the final name.
void write_point_stats_csv(const std::string& path,
                           const std::vector<std::string>& labels,
                           const std::vector<PointStats>& stats);

/// Same bytes as the file write_point_stats_csv produces, as a string —
/// the daemon streams this to clients, so a served aggregate is comparable
/// byte-for-byte (`cmp`) with a CLI-written CSV.
std::string point_stats_csv_text(const std::vector<std::string>& labels,
                                 const std::vector<PointStats>& stats);

/// Completed trials replayed from a prior run's JSONL manifest. A missing
/// file yields an empty resume (fresh start); unparseable lines — the torn
/// tail a kill can leave — are skipped with a stderr warning and counted
/// in `skipped_lines`, never fatal (the complete prefix is still worth
/// replaying). Later duplicates of the same (point, replication) win
/// (harmless: records are bit-identical).
struct SweepResume {
  std::map<std::pair<std::size_t, std::size_t>, TrialRecord> completed;
  std::size_t skipped_lines = 0;  // torn/unparseable lines ignored on load

  static SweepResume from_jsonl(const std::string& path);

  const TrialRecord* find(std::size_t point_index,
                          std::size_t replication) const;
};

}  // namespace consensus::exp
