#include "consensus/exact/markov.hpp"

#include <cmath>
#include <stdexcept>

#include "consensus/exact/linalg.hpp"

namespace consensus::exact {

std::vector<double> binomial_pmf(std::uint64_t n, double p) {
  std::vector<double> pmf(n + 1, 0.0);
  if (p <= 0.0) {
    pmf[0] = 1.0;
    return pmf;
  }
  if (p >= 1.0) {
    pmf[n] = 1.0;
    return pmf;
  }
  const double nd = static_cast<double>(n);
  const double lp = std::log(p);
  const double lq = std::log1p(-p);
  const double lg_n1 = std::lgamma(nd + 1.0);
  for (std::uint64_t x = 0; x <= n; ++x) {
    const double xd = static_cast<double>(x);
    const double logpmf = lg_n1 - std::lgamma(xd + 1.0) -
                          std::lgamma(nd - xd + 1.0) + xd * lp +
                          (nd - xd) * lq;
    pmf[x] = std::exp(logpmf);
  }
  return pmf;
}

std::vector<double> transition_row(Chain chain, std::uint64_t n,
                                   std::uint64_t c) {
  if (c > n) throw std::invalid_argument("transition_row: c <= n required");
  const double nd = static_cast<double>(n);
  const double a0 = static_cast<double>(c) / nd;
  const double a1 = 1.0 - a0;
  const double gamma = a0 * a0 + a1 * a1;

  switch (chain) {
    case Chain::kVoter:
      return binomial_pmf(n, a0);
    case Chain::kThreeMajority:
      return binomial_pmf(n, a0 * (1.0 + a0 - gamma));
    case Chain::kTwoChoices: {
      // c' = Z0 + B with Z0 ~ Bin(c, 1−γ), Z1 ~ Bin(n−c, 1−γ) and
      // B ~ Bin(n − Z0 − Z1, a0²/γ), all independent given (Z0, Z1).
      const double keep = 1.0 - gamma;
      const double q = (a0 * a0) / gamma;
      const auto pmf_z0 = binomial_pmf(c, keep);
      const auto pmf_z1 = binomial_pmf(n - c, keep);
      std::vector<double> row(n + 1, 0.0);
      for (std::uint64_t z0 = 0; z0 <= c; ++z0) {
        if (pmf_z0[z0] < 1e-300) continue;
        for (std::uint64_t z1 = 0; z1 <= n - c; ++z1) {
          const double w = pmf_z0[z0] * pmf_z1[z1];
          if (w < 1e-300) continue;
          const std::uint64_t m = n - z0 - z1;
          const auto pmf_b = binomial_pmf(m, q);
          for (std::uint64_t b = 0; b <= m; ++b) {
            row[z0 + b] += w * pmf_b[b];
          }
        }
      }
      return row;
    }
  }
  throw std::logic_error("transition_row: bad chain");
}

AbsorptionResult absorption_two_opinions(Chain chain, std::uint64_t n) {
  if (n < 2)
    throw std::invalid_argument("absorption_two_opinions: n >= 2 required");
  const std::size_t transient = n - 1;  // states 1..n−1

  // Build Q (transient-to-transient) and the absorption columns once.
  Matrix i_minus_q(transient, transient);
  std::vector<double> to_win(transient, 0.0);  // P(c -> n) in one step
  for (std::uint64_t c = 1; c < n; ++c) {
    const auto row = transition_row(chain, n, c);
    for (std::uint64_t c2 = 1; c2 < n; ++c2) {
      i_minus_q.at(c - 1, c2 - 1) =
          (c == c2 ? 1.0 : 0.0) - row[c2];
    }
    to_win[c - 1] = row[n];
  }

  // E[τ] solves (I − Q)·t = 1; win probability solves (I − Q)·w = r where
  // r is the one-step probability of absorbing at c = n.
  AbsorptionResult result;
  const auto times =
      solve_linear(i_minus_q, std::vector<double>(transient, 1.0));
  const auto wins = solve_linear(i_minus_q, to_win);

  result.expected_rounds.assign(n + 1, 0.0);
  result.win_prob.assign(n + 1, 0.0);
  result.win_prob[n] = 1.0;
  for (std::uint64_t c = 1; c < n; ++c) {
    result.expected_rounds[c] = times[c - 1];
    result.win_prob[c] = wins[c - 1];
  }
  return result;
}

}  // namespace consensus::exact
