// THM26 — Theorem 2.6: plurality consensus.
//
// Paper claim: if the initial margin of the most popular opinion over every
// other opinion is ≳ √(log n/n) for 3-Majority (resp. √(α₁·log n/n) for
// 2-Choices) and γ₀ is above threshold, the dynamics converge on the
// initially most popular opinion w.h.p. This bench sweeps the margin as a
// multiple of the threshold and reports the plurality win rate: the curve
// must climb from ~chance at margin 0 to ~1 past the threshold.
#include <iostream>

#include "bench_util.hpp"

using namespace consensus;

namespace {

support::ProportionCI plurality_rate(const char* protocol_name,
                                     std::uint64_t n, std::uint32_t k,
                                     double margin, std::size_t reps,
                                     std::uint64_t seed) {
  api::ScenarioSpec spec;
  spec.protocol = protocol_name;
  spec.n = n;
  spec.k = k;
  spec.init.kind = "biased";
  spec.init.param = margin;
  spec.seed = seed;
  spec.max_rounds = 500000;
  return bench::run_scenario(spec, reps).plurality_ci;
}

}  // namespace

int main() {
  const std::uint64_t n = 1 << 14;
  const std::uint32_t k = 16;
  constexpr std::size_t kReps = 60;

  exp::ExperimentReport report(
      "THM26",
      "plurality win rate vs initial margin (n=16384, k=16, 60 reps)",
      {"dynamics", "margin/threshold", "margin", "win_rate", "wilson_lo",
       "wilson_hi"},
      "thm26_plurality.csv");

  struct Curve {
    const char* name;
    core::theory::Dynamics dynamics;
    std::vector<double> rates;
  };
  std::vector<Curve> curves{
      {"3-majority", core::theory::Dynamics::kThreeMajority, {}},
      {"2-choices", core::theory::Dynamics::kTwoChoices, {}}};

  const std::vector<double> multiples{0.0, 0.5, 1.0, 2.0, 4.0, 8.0};
  for (auto& curve : curves) {
    const double threshold = core::theory::plurality_margin_threshold(
        curve.dynamics, n, 1.0 / static_cast<double>(k));
    for (double mult : multiples) {
      const auto ci = plurality_rate(curve.name, n, k, mult * threshold,
                                     kReps, 0x2600 + static_cast<int>(mult * 2));
      curve.rates.push_back(ci.estimate);
      report.add_row({curve.name, bench::fmt3(mult),
                      bench::fmt3(mult * threshold), bench::fmt3(ci.estimate),
                      bench::fmt3(ci.lo), bench::fmt3(ci.hi)});
    }
  }

  for (const auto& curve : curves) {
    // Margin 0: every opinion symmetric → win rate near 1/k (certainly
    // far from 1).
    report.add_check(std::string(curve.name) +
                         ": zero margin leaves the race open (rate < 0.6)",
                     curve.rates.front() < 0.6);
    // Margin 8× threshold: plurality wins essentially always.
    report.add_check(std::string(curve.name) +
                         ": 8x threshold margin wins w.h.p. (rate >= 0.95)",
                     curve.rates.back() >= 0.95);
    // Monotone-ish increase across the sweep.
    bool monotone = true;
    for (std::size_t i = 0; i + 1 < curve.rates.size(); ++i) {
      monotone = monotone && curve.rates[i + 1] >= curve.rates[i] - 0.15;
    }
    report.add_check(std::string(curve.name) +
                         ": win rate increases with margin (≲ noise)",
                     monotone);
  }
  return exp::exit_code(report.finish());
}
