// Opinion survival curves: the fraction of initially-supported opinions
// still alive after t rounds, averaged over replications. [BCEKMN17] prove
// that after T rounds of 3-Majority at most O(n log n/T) opinions remain
// (the result Remark 2.5 combines with Theorem 2.1); the survival curve
// makes that 1/T envelope visible.
#pragma once

#include <cstdint>
#include <vector>

#include "consensus/core/configuration.hpp"
#include "consensus/core/protocol.hpp"
#include "consensus/support/rng.hpp"
#include "consensus/support/stats.hpp"

namespace consensus::analysis {

class SurvivalCurve {
 public:
  /// Samples the support size at rounds 0, stride, 2·stride, ... up to
  /// `max_rounds`.
  SurvivalCurve(std::uint64_t max_rounds, std::uint64_t stride);

  /// Runs one replication from `start` and folds its curve in.
  void add_run(const core::Protocol& protocol, core::Configuration start,
               support::Rng& rng);

  std::size_t checkpoints() const noexcept { return rounds_.size(); }
  std::uint64_t round_at(std::size_t i) const { return rounds_.at(i); }
  /// Mean fraction of the initial support alive at checkpoint i.
  double alive_fraction(std::size_t i) const;
  /// Mean absolute surviving-opinion count at checkpoint i.
  double alive_count(std::size_t i) const;

 private:
  std::vector<std::uint64_t> rounds_;
  std::vector<support::Welford> alive_;      // fraction of initial support
  std::vector<support::Welford> alive_abs_;  // absolute count
};

}  // namespace consensus::analysis
