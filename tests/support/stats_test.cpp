#include "consensus/support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace consensus::support {
namespace {

TEST(Welford, MatchesDirectComputation) {
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  Welford w;
  for (double x : xs) w.add(x);
  EXPECT_EQ(w.count(), 5u);
  EXPECT_DOUBLE_EQ(w.mean(), 6.2);
  // Sample variance: Σ(x−m)²/(n−1) = 37.2
  EXPECT_NEAR(w.variance(), 37.2, 1e-12);
  EXPECT_DOUBLE_EQ(w.min(), 1.0);
  EXPECT_DOUBLE_EQ(w.max(), 16.0);
}

TEST(Welford, SingleAndEmpty) {
  Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  w.add(3.0);
  EXPECT_DOUBLE_EQ(w.mean(), 3.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
}

TEST(Welford, MergeEqualsSequential) {
  Welford a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    (i < 20 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Quantile, InterpolatesLinearly) {
  const std::vector<double> sorted{0.0, 10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(quantile(sorted, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(sorted, 1.0), 30.0);
  EXPECT_DOUBLE_EQ(quantile(sorted, 0.5), 15.0);
  EXPECT_DOUBLE_EQ(quantile(sorted, 0.25), 7.5);
}

TEST(Quantile, EmptyThrows) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
}

TEST(Summarize, FullSummary) {
  const std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.q25, 2.0);
  EXPECT_DOUBLE_EQ(s.q75, 4.0);
  EXPECT_LT(s.ci95_lo, 3.0);
  EXPECT_GT(s.ci95_hi, 3.0);
}

TEST(LinearFit, ExactLine) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{3, 5, 7, 9, 11};  // y = 1 + 2x
  const auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope_stderr, 0.0, 1e-9);
}

TEST(LinearFit, RejectsDegenerate) {
  EXPECT_THROW(linear_fit(std::vector<double>{1.0},
                          std::vector<double>{2.0}),
               std::invalid_argument);
  EXPECT_THROW(linear_fit(std::vector<double>{1.0, 1.0},
                          std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(LogLogFit, RecoversPowerLaw) {
  std::vector<double> x, y;
  for (double v : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    x.push_back(v);
    y.push_back(3.0 * std::pow(v, 1.5));
  }
  const auto fit = loglog_fit(x, y);
  EXPECT_NEAR(fit.slope, 1.5, 1e-9);
  EXPECT_NEAR(std::exp(fit.intercept), 3.0, 1e-9);
}

TEST(LogLogFit, RejectsNonPositive) {
  EXPECT_THROW(loglog_fit(std::vector<double>{1.0, -1.0},
                          std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(WilsonCI, ContainsTruthAndClamps) {
  const auto ci = wilson_ci(50, 100);
  EXPECT_NEAR(ci.estimate, 0.5, 1e-12);
  EXPECT_LT(ci.lo, 0.5);
  EXPECT_GT(ci.hi, 0.5);

  const auto zeros = wilson_ci(0, 100);
  EXPECT_DOUBLE_EQ(zeros.estimate, 0.0);
  EXPECT_GE(zeros.lo, 0.0);
  EXPECT_GT(zeros.hi, 0.0);

  const auto ones = wilson_ci(100, 100);
  EXPECT_LE(ones.hi, 1.0);
  EXPECT_LT(ones.lo, 1.0);
}

TEST(WilsonCI, EmptyTrials) {
  const auto ci = wilson_ci(0, 0);
  EXPECT_DOUBLE_EQ(ci.estimate, 0.0);
}

TEST(BootstrapCI, CoversMeanOfTightSample) {
  std::vector<double> xs(200, 7.0);
  const auto ci = bootstrap_mean_ci(xs);
  EXPECT_DOUBLE_EQ(ci.lo, 7.0);
  EXPECT_DOUBLE_EQ(ci.hi, 7.0);
}

TEST(BootstrapCI, ReasonableWidth) {
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(static_cast<double>(i % 10));
  const auto ci = bootstrap_mean_ci(xs);
  EXPECT_LT(ci.lo, 4.5);
  EXPECT_GT(ci.hi, 4.5);
  EXPECT_LT(ci.hi - ci.lo, 3.0);
}

TEST(ChiSquared, ZeroForPerfectMatch) {
  const std::vector<std::uint64_t> obs{10, 20, 30};
  const std::vector<double> expd{10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(chi_squared_statistic(obs, expd), 0.0);
}

TEST(ChiSquared, RejectsBadInput) {
  EXPECT_THROW(chi_squared_statistic(std::vector<std::uint64_t>{1},
                                     std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(chi_squared_statistic(std::vector<std::uint64_t>{1},
                                     std::vector<double>{0.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace consensus::support
