#include "consensus/graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace consensus::graph {

Graph Graph::complete_with_self_loops(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("Graph: n must be positive");
  Graph g;
  g.n_ = n;
  g.complete_ = true;
  return g;
}

Graph Graph::complete_without_self_loops(std::uint64_t n) {
  if (n < 2)
    throw std::invalid_argument(
        "Graph: complete graph without self-loops needs n >= 2");
  Graph g;
  g.n_ = n;
  g.complete_ = true;
  g.self_loops_ = false;
  return g;
}

Graph Graph::from_edges(std::uint64_t n,
                        std::span<const std::pair<Vertex, Vertex>> edges) {
  if (n == 0) throw std::invalid_argument("Graph: n must be positive");
  Graph g;
  g.n_ = n;
  g.complete_ = false;
  std::vector<std::uint64_t> deg(n, 0);
  for (auto [u, v] : edges) {
    if (u >= n || v >= n)
      throw std::invalid_argument("Graph: edge endpoint out of range");
    ++deg[u];
    if (u != v) ++deg[v];
  }
  g.offsets_.assign(n + 1, 0);
  for (std::uint64_t v = 0; v < n; ++v) g.offsets_[v + 1] = g.offsets_[v] + deg[v];
  g.adjacency_.resize(g.offsets_[n]);
  std::vector<std::uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (auto [u, v] : edges) {
    g.adjacency_[cursor[u]++] = v;
    if (u != v) g.adjacency_[cursor[v]++] = u;
  }
  return g;
}

std::uint64_t Graph::degree(Vertex v) const {
  if (v >= n_) throw std::out_of_range("Graph::degree: vertex out of range");
  if (complete_) return self_loops_ ? n_ : n_ - 1;
  return offsets_[v + 1] - offsets_[v];
}

std::span<const Vertex> Graph::neighbors(Vertex v) const {
  if (complete_)
    throw std::logic_error(
        "Graph::neighbors: implicit complete graph has no materialised "
        "adjacency; use random_neighbor");
  if (v >= n_)
    throw std::out_of_range("Graph::neighbors: vertex out of range");
  return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
}

bool Graph::min_degree_positive() const {
  if (complete_) return true;
  for (std::uint64_t v = 0; v < n_; ++v) {
    if (offsets_[v + 1] == offsets_[v]) return false;
  }
  return true;
}

}  // namespace consensus::graph
