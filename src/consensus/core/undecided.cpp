#include "consensus/core/undecided.hpp"

#include <algorithm>

#include "consensus/support/sampling.hpp"

namespace consensus::core {

Opinion Undecided::update(Opinion current, OpinionSampler& neighbors,
                          support::Rng& rng) const {
  SamplerDraws draws{neighbors};
  return update_from_draws(current, draws, rng);
}

bool Undecided::step_counts(const Configuration& cur,
                            std::vector<std::uint64_t>& next,
                            support::Rng& rng) const {
  const std::size_t slots = cur.num_opinions();
  if (slots < 2) return false;  // need at least one opinion plus ⊥
  const std::size_t bot = slots - 1;
  const auto nd = static_cast<double>(cur.num_vertices());

  std::vector<double> alpha(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    alpha[i] = static_cast<double>(cur.counts()[i]) / nd;
  }

  next.assign(slots, 0);
  // Undecided vertices adopt a uniformly random neighbour's state.
  std::vector<std::uint64_t> inflow;
  support::multinomial_into(rng, cur.counts()[bot], alpha, inflow);

  std::uint64_t to_bot = inflow[bot];
  for (std::size_t c = 0; c < bot; ++c) {
    const double leave_p = 1.0 - alpha[bot] - alpha[c];
    const std::uint64_t leavers =
        support::binomial(rng, cur.counts()[c], leave_p);
    next[c] = cur.counts()[c] - leavers + inflow[c];
    to_bot += leavers;
  }
  next[bot] = to_bot;
  return true;
}

bool Undecided::outcome_distribution_mixture(Opinion current,
                                             std::span<const double> sampling,
                                             std::uint64_t n_hint,
                                             std::vector<double>& out) const {
  (void)n_hint;
  const std::size_t slots = sampling.size();
  if (slots < 2) return false;  // need at least one opinion plus ⊥
  const std::size_t bot = slots - 1;
  if (current == bot) {
    // Undecided holder adopts the draw verbatim.
    out.assign(sampling.begin(), sampling.end());
    return true;
  }
  out.assign(slots, 0.0);
  const double keep = sampling[bot] + sampling[current];
  out[current] = keep;
  out[bot] = std::max(0.0, 1.0 - keep);
  return true;
}

bool Undecided::is_consensus(const Configuration& config) const {
  const Opinion bot = undecided_slot(config);
  return config.support_size() == 1 && config.count(bot) == 0;
}

Opinion Undecided::winner(const Configuration& config) const {
  return config.plurality();
}

Configuration with_undecided_slot(const Configuration& config) {
  std::vector<std::uint64_t> counts(config.counts().begin(),
                                    config.counts().end());
  counts.push_back(0);
  return Configuration(std::move(counts));
}

std::unique_ptr<Protocol> make_undecided() {
  return std::make_unique<Undecided>();
}

}  // namespace consensus::core
