// EXT-ZEALOTS — stubborn-agent robustness (the persistent-adversary cousin
// of §2.5's per-round adversary): z zealots hold opinion 0 forever while
// the other n−z vertices start on opinion 1 and run 3-Majority. How many
// zealots does it take to drag the free population over?
//
// Expectation from the drift picture: while the zealot fraction is below
// the bias the majority drift can erase, the free majority holds
// essentially forever; past a constant fraction threshold the zealots
// flip everyone. The bench locates the transition empirically.
#include <iostream>

#include "bench_util.hpp"

using namespace consensus;

namespace {

/// Fraction of runs in which the zealots converted every free vertex
/// within the round cap. Zealots are a ZealotSpec line: `zealots` holders
/// of opinion 0 frozen forever, everyone else on opinion 1 — takeover is
/// exactly "consensus reached" (the zealots' opinion can never die, so a
/// single surviving opinion means opinion 1 is extinct).
double takeover_rate(std::uint64_t n, std::uint64_t zealots,
                     std::size_t reps, std::uint64_t seed) {
  api::ScenarioSpec spec;
  spec.protocol = "3-majority";
  spec.set_counts({zealots, n - zealots});
  spec.zealots = api::ZealotSpec{.opinion = 0, .count = zealots};
  spec.seed = seed;
  spec.max_rounds = 2000;
  return bench::run_scenario(spec, reps).success_rate;
}

}  // namespace

int main() {
  const std::uint64_t n = 2048;

  exp::ExperimentReport report(
      "EXT-ZEALOTS",
      "3-Majority vs frozen zealot minority (n=2048, cap 2000 rounds, 10 "
      "reps)",
      {"zealot_frac", "zealots", "takeover_rate"}, "ext_zealots.csv");

  double low_frac_rate = 1.0;
  double high_frac_rate = 0.0;
  for (double frac : {0.005, 0.02, 0.1, 0.25, 0.4}) {
    const auto z = static_cast<std::uint64_t>(frac * static_cast<double>(n));
    const double rate = takeover_rate(n, z, 10, 0x2ea1 + z);
    if (frac <= 0.02) low_frac_rate = std::min(low_frac_rate, 1.0 - rate);
    if (frac >= 0.4) high_frac_rate = std::max(high_frac_rate, rate);
    report.add_row({bench::fmt3(frac), std::to_string(z), bench::fmt3(rate)});
  }
  report.add_check(
      "<= 2% zealots never take over within the cap (drift holds the line)",
      low_frac_rate == 1.0);
  report.add_check(">= 40% zealots always take over", high_frac_rate == 1.0);
  return exp::exit_code(report.finish());
}
