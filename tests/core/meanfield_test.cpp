// Mean-field agent fast path cross-validation:
//
//  * fused kernels (fused_visitor → update_from_draws) must draw exactly
//    the stream the virtual update() path draws — bit-identical trajectories
//    for the agent, async, and pairwise engines, with the fast path on and
//    off;
//  * the count-space alias sampler must be distribution-identical to the
//    per-vertex dense path: chi-square of one engine round against the
//    protocols' exact one-round laws, and KS against the dense agent path
//    and the counting engine;
//  * seed-determinism across 1/2/8 threads, fast path on and off;
//  * EngineState round-trips mid-run (the per-round alias table is derived
//    state and must be rebuilt transparently);
//  * zealots ride the fast path (they are sampled, never updated).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "consensus/core/agent_engine.hpp"
#include "consensus/core/async_engine.hpp"
#include "consensus/core/counting_engine.hpp"
#include "consensus/core/init.hpp"
#include "consensus/core/pairwise_engine.hpp"
#include "consensus/core/undecided.hpp"
#include "consensus/graph/generators.hpp"
#include "consensus/support/stats.hpp"
#include "consensus/support/thread_pool.hpp"

namespace consensus::core {
namespace {

const char* const kAllProtocols[] = {
    "voter",     "3-majority",   "3-majority-keep", "2-choices",
    "median",    "h-majority:3", "h-majority:5",    "undecided"};

/// Start with interleaved extinct slots so compact/dense bookkeeping and
/// slot conventions are all exercised. The undecided protocol treats the
/// LAST slot as ⊥, which here is alive slot 6 — fine, ⊥ may hold mass.
Configuration small_start() { return Configuration({160, 0, 90, 0, 0, 50, 100}); }

std::vector<Opinion> run_agent_rounds(const Protocol& protocol,
                                      const graph::Graph& graph,
                                      const Configuration& start,
                                      bool mean_field, std::uint64_t seed,
                                      int rounds,
                                      support::ThreadPool* pool = nullptr) {
  AgentEngine engine(protocol, graph, start);
  engine.set_mean_field(mean_field);
  if (pool != nullptr) engine.set_thread_pool(pool);
  support::Rng rng(seed);
  for (int t = 0; t < rounds; ++t) engine.step(rng);
  const auto view = engine.opinions();
  return std::vector<Opinion>(view.begin(), view.end());
}

// ------------------------------------ fused == virtual, bit for bit

TEST(MeanFieldFused, AgentFusedMatchesVirtualBitExact) {
  // make_generic_only forwards update() but keeps the default null
  // fused_visitor(), so the wrapped engine runs the virtual loop over the SAME
  // sampler. update_from_draws promises the same draw stream as update():
  // the trajectories must match to the bit, fast path on and off.
  const auto g = graph::Graph::complete_with_self_loops(400);
  for (const char* name : kAllProtocols) {
    const auto fused = make_protocol(name);
    const auto virtual_only = make_generic_only(make_protocol(name));
    for (const bool mean_field : {true, false}) {
      const auto a = run_agent_rounds(*fused, g, small_start(), mean_field,
                                      0x11, 6);
      const auto b = run_agent_rounds(*virtual_only, g, small_start(),
                                      mean_field, 0x11, 6);
      EXPECT_EQ(a, b) << name << " mean_field=" << mean_field;
    }
  }
}

TEST(MeanFieldFused, AgentFusedMatchesVirtualOnCsrGraphs) {
  support::Rng gen(5);
  const auto g = graph::random_regular(120, 6, gen);
  for (const char* name : {"3-majority", "median", "h-majority:3"}) {
    const auto fused = make_protocol(name);
    const auto virtual_only = make_generic_only(make_protocol(name));
    // Mixed start via per-vertex assignment.
    std::vector<Opinion> opinions(120);
    for (std::size_t v = 0; v < opinions.size(); ++v) {
      opinions[v] = static_cast<Opinion>(v % 4);
    }
    AgentEngine ea2(*fused, g, opinions, 4);
    AgentEngine eb2(*virtual_only, g, opinions, 4);
    support::Rng ra(0x22), rb(0x22);
    for (int t = 0; t < 5; ++t) {
      ea2.step(ra);
      eb2.step(rb);
    }
    EXPECT_TRUE(std::ranges::equal(ea2.opinions(), eb2.opinions())) << name;
  }
}

TEST(MeanFieldFused, AsyncFusedMatchesVirtualBitExact) {
  for (const char* name : kAllProtocols) {
    const auto fused = make_protocol(name);
    const auto virtual_only = make_generic_only(make_protocol(name));
    AsyncEngine ea(*fused, small_start());
    AsyncEngine eb(*virtual_only, small_start());
    support::Rng ra(0x33), rb(0x33);
    for (int t = 0; t < 2000; ++t) {
      ea.tick(ra);
      eb.tick(rb);
    }
    EXPECT_EQ(ea.config(), eb.config()) << name;
  }
}

TEST(MeanFieldFused, PairwiseFusedMatchesVirtualBitExact) {
  for (const char* name : {"voter", "undecided"}) {
    const auto fused = make_protocol(name);
    const auto virtual_only = make_generic_only(make_protocol(name));
    PairwiseEngine ea(*fused, small_start());
    PairwiseEngine eb(*virtual_only, small_start());
    support::Rng ra(0x44), rb(0x44);
    for (int t = 0; t < 2000; ++t) {
      ea.interact(ra);
      eb.interact(rb);
    }
    EXPECT_EQ(ea.config(), eb.config()) << name;
  }
}

// --------------------------- chi-square: count-space draws vs exact laws

// 99.99% chi-square quantiles for df = 1..15 (matches the other suites).
constexpr double kChi2Crit[16] = {0.0,   15.14, 18.42, 21.11, 23.51, 25.74,
                                  27.86, 29.88, 31.83, 33.72, 35.56, 37.37,
                                  39.13, 40.87, 42.58, 44.26};

/// One fast-path agent round from `start` produces, per vertex of group c,
/// an independent draw from the protocol's one-round law q_c; the round's
/// counts are the sufficient statistic. Expected counts follow from the
/// group laws: E[next_j] = Σ_c count(c)·q_c(j). (For current-dependent
/// rules the observed vector is a sum of independent group multinomials,
/// whose per-slot variance is at most the pooled-multinomial one the
/// chi-square assumes — the test is conservative, never anti-conservative.)
void expect_round_counts_match_law(const char* name, const Configuration& start,
                                   std::uint64_t seed) {
  const auto protocol = make_protocol(name);
  std::vector<double> expected_mass(start.num_opinions(), 0.0);
  const auto alive = start.alive();
  for (const Opinion group : alive) {
    std::vector<double> law;
    if (protocol->outcome_distribution(group, start, law)) {
      ASSERT_EQ(law.size(), start.num_opinions()) << name;
      for (std::size_t j = 0; j < law.size(); ++j) {
        expected_mass[j] +=
            static_cast<double>(start.count(group)) * law[j];
      }
      continue;
    }
    std::vector<double> compact;
    ASSERT_TRUE(protocol->outcome_distribution_alive(group, start, compact))
        << name << ": need some exact law for the expectation";
    for (std::size_t i = 0; i < alive.size(); ++i) {
      expected_mass[alive[i]] +=
          static_cast<double>(start.count(group)) * compact[i];
    }
  }

  // Accumulate several fast-path rounds (reset each time) so expected
  // bucket masses are comfortably large for the chi-square.
  constexpr int kRounds = 40;
  const auto g = graph::Graph::complete_with_self_loops(start.num_vertices());
  std::vector<std::uint64_t> observed(start.num_opinions(), 0);
  support::Rng rng(seed);
  for (int r = 0; r < kRounds; ++r) {
    AgentEngine engine(*protocol, g, start);
    engine.step(rng);
    const Configuration round = engine.config();
    for (std::size_t j = 0; j < round.num_opinions(); ++j) {
      observed[j] += round.counts()[j];
    }
  }

  std::vector<std::uint64_t> obs;
  std::vector<double> expected;
  for (std::size_t j = 0; j < observed.size(); ++j) {
    if (expected_mass[j] > 0.0) {
      obs.push_back(observed[j]);
      expected.push_back(expected_mass[j] * kRounds);
    } else {
      EXPECT_EQ(observed[j], 0u) << name << " slot " << j;
    }
  }
  ASSERT_GE(obs.size(), 2u) << name;
  ASSERT_LE(obs.size() - 1, 15u) << name;
  const double stat = support::chi_squared_statistic(obs, expected);
  EXPECT_LT(stat, kChi2Crit[obs.size() - 1]) << name << ": chi2=" << stat;
}

TEST(MeanFieldLaw, CountSamplerRoundMatchesExactLawChiSquare) {
  // Every protocol with a computable exact law; undecided has none and is
  // covered by the KS tests below. 2-choices only exposes its sparse law
  // (and only where a² <= k), so it gets a two-alive start.
  std::uint64_t seed = 0xbead;
  for (const char* name : {"voter", "3-majority", "3-majority-keep",
                           "median", "h-majority:3", "h-majority:5"}) {
    expect_round_counts_match_law(name, small_start(), seed++);
  }
  expect_round_counts_match_law(
      "2-choices", Configuration({240, 0, 0, 0, 160, 0, 0}), seed);
}

// ----------------------------- KS: meanfield vs dense vs counting engine

TEST(MeanFieldLaw, OneRoundKsMeanfieldVsDensePerProtocol) {
  const auto g = graph::Graph::complete_with_self_loops(400);
  const Configuration start = small_start();
  for (const char* name : kAllProtocols) {
    const auto protocol = make_protocol(name);
    support::Rng rng_m(71), rng_d(72);
    std::vector<double> via_meanfield, via_dense;
    for (int t = 0; t < 2500; ++t) {
      AgentEngine em(*protocol, g, start);
      em.step(rng_m);
      via_meanfield.push_back(static_cast<double>(em.config().count(2)));
      AgentEngine ed(*protocol, g, start);
      ed.set_mean_field(false);
      ed.step(rng_d);
      via_dense.push_back(static_cast<double>(ed.config().count(2)));
    }
    const double d = support::ks_statistic(via_meanfield, via_dense);
    EXPECT_GT(support::ks_p_value(d, via_meanfield.size(), via_dense.size()),
              1e-4)
        << name << " meanfield-vs-dense KS d=" << d;
  }
}

TEST(MeanFieldLaw, OneRoundKsAgentMeanfieldVsCountingEngine) {
  const auto g = graph::Graph::complete_with_self_loops(400);
  const Configuration start = small_start();
  for (const char* name : {"3-majority", "h-majority:5", "median"}) {
    const auto protocol = make_protocol(name);
    support::Rng rng_a(81), rng_c(82);
    std::vector<double> via_agent, via_counting;
    for (int t = 0; t < 2500; ++t) {
      AgentEngine ea(*protocol, g, start);
      ea.step(rng_a);
      via_agent.push_back(static_cast<double>(ea.config().count(2)));
      CountingEngine ec(*protocol, start);
      ec.step(rng_c);
      via_counting.push_back(static_cast<double>(ec.config().count(2)));
    }
    const double d = support::ks_statistic(via_agent, via_counting);
    EXPECT_GT(support::ks_p_value(d, via_agent.size(), via_counting.size()),
              1e-4)
        << name << " agent-meanfield-vs-counting KS d=" << d;
  }
}

// ------------------------------------------------ determinism and state

TEST(MeanFieldDeterminism, SameTrajectoryAcrossOneTwoEightThreads) {
  // n spans several kChunkVertices chunks so the pool actually stripes.
  const std::uint64_t n = 3 * AgentEngine::kChunkVertices + 1234;
  const auto g = graph::Graph::complete_with_self_loops(n);
  const Configuration start = balanced(n, 8);
  const auto protocol = make_protocol("3-majority");
  for (const bool mean_field : {true, false}) {
    const auto serial =
        run_agent_rounds(*protocol, g, start, mean_field, 0x77, 3);
    for (const std::size_t threads : {1u, 2u, 8u}) {
      support::ThreadPool pool(threads);
      const auto pooled = run_agent_rounds(*protocol, g, start, mean_field,
                                           0x77, 3, &pool);
      EXPECT_EQ(pooled, serial)
          << threads << " threads, mean_field=" << mean_field;
    }
  }
}

TEST(MeanFieldDeterminism, OnAndOffAreEachDeterministicButDistinctStreams) {
  const auto g = graph::Graph::complete_with_self_loops(2000);
  const Configuration start = balanced(2000, 4);
  const auto protocol = make_protocol("3-majority");
  const auto on_a = run_agent_rounds(*protocol, g, start, true, 9, 4);
  const auto on_b = run_agent_rounds(*protocol, g, start, true, 9, 4);
  const auto off_a = run_agent_rounds(*protocol, g, start, false, 9, 4);
  const auto off_b = run_agent_rounds(*protocol, g, start, false, 9, 4);
  EXPECT_EQ(on_a, on_b);
  EXPECT_EQ(off_a, off_b);
  // Different RNG consumption per draw ⇒ (almost surely) different
  // trajectories; asserting it documents that the fast path is a
  // different — equally exact — stream, not a bit-compatible one.
  EXPECT_NE(on_a, off_a);
}

TEST(MeanFieldState, EngineStateRoundTripsThroughMidRunAliasTable) {
  // The per-round alias table is derived state: capture after some fast-
  // path rounds, restore into a fresh engine, and the continuation must be
  // bit-exact against the uninterrupted run.
  const auto g = graph::Graph::complete_with_self_loops(1500);
  const Configuration start = balanced(1500, 6);
  const auto protocol = make_protocol("h-majority:3");
  AgentEngine reference(*protocol, g, start);
  support::Rng rng(0xfeed);
  for (int t = 0; t < 3; ++t) reference.step(rng);
  const EngineState state = reference.capture_state();
  support::Rng rng_copy = rng;
  for (int t = 0; t < 4; ++t) reference.step(rng);

  AgentEngine restored(*protocol, g, start);
  restored.restore_state(state);
  EXPECT_EQ(restored.rounds_elapsed(), 3u);
  for (int t = 0; t < 4; ++t) restored.step(rng_copy);
  EXPECT_TRUE(std::ranges::equal(restored.opinions(), reference.opinions()));
  EXPECT_EQ(restored.config(), reference.config());
  EXPECT_EQ(rng_copy.state(), rng.state());
}

TEST(MeanFieldZealots, FrozenVerticesRideTheFastPath) {
  const auto g = graph::Graph::complete_with_self_loops(600);
  const auto protocol = make_protocol("3-majority");
  AgentEngine engine(*protocol, g, balanced(600, 3));
  ASSERT_EQ(engine.freeze_holders(2, 50), 50u);
  support::Rng rng(0x99);
  for (int t = 0; t < 40; ++t) engine.step(rng);
  // Zealots never update: opinion 2 keeps at least its frozen holders.
  EXPECT_GE(engine.config().count(2), 50u);
  EXPECT_EQ(engine.frozen_count(), 50u);
  std::uint64_t still_frozen = 0;
  for (std::size_t v = 0; v < 600; ++v) {
    if (engine.opinions()[v] == 2 && v >= 400) ++still_frozen;
  }
  // Block assignment puts opinion 2 on vertices [400, 600); the first 50
  // of those were frozen.
  EXPECT_GE(still_frozen, 50u);
}

}  // namespace
}  // namespace consensus::core
