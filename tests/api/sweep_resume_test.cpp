// The headline resume guarantee (ISSUE 3 acceptance criterion): a sweep
// interrupted mid-run and resumed from its JSONL manifest produces
// BYTE-IDENTICAL aggregate CSV output to an uninterrupted run — for all
// four engines. Interruption is simulated by truncating the manifest to a
// prefix (exactly what a kill leaves behind, per-line flushing) and
// resuming from it.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "consensus/api/sweep_runner.hpp"
#include "test_util.hpp"

namespace consensus::api {
namespace {

/// Counts replayed vs freshly-run trials, to prove resume actually skipped.
class CountingSink final : public exp::ResultSink {
 public:
  void on_trial(const exp::TrialRecord& record) override {
    ++(record.replayed ? replayed_ : live_);
  }
  std::size_t replayed_ = 0;
  std::size_t live_ = 0;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void truncate_to_lines(const std::string& path, std::size_t keep) {
  std::ifstream in(path);
  std::ostringstream kept;
  std::string line;
  for (std::size_t i = 0; i < keep && std::getline(in, line); ++i) {
    kept << line << '\n';
  }
  in.close();
  std::ofstream out(path, std::ios::trunc);
  out << kept.str();
}

class SweepResumeTest : public ::testing::Test {
 protected:
  /// Per-(test, process) files — see testing::unique_temp_path.
  std::string manifest_ = consensus::testing::unique_temp_path(".jsonl");
  std::string full_csv_ = consensus::testing::unique_temp_path("_full.csv");
  std::string resumed_csv_ =
      consensus::testing::unique_temp_path("_resumed.csv");

  void TearDown() override {
    std::remove(manifest_.c_str());
    std::remove(full_csv_.c_str());
    std::remove(resumed_csv_.c_str());
  }

  void expect_byte_identical_resume(const SweepSpec& spec) {
    const SweepRunner runner(spec);
    const std::size_t total = runner.num_trials();
    ASSERT_GE(total, 4u) << "fixture too small to interrupt meaningfully";

    // Uninterrupted reference: full run, manifest + aggregate CSV.
    {
      exp::JsonlSink jsonl(manifest_);
      const auto stats = runner.run(/*threads=*/2, {&jsonl});
      exp::write_point_stats_csv(full_csv_, runner.labels(), stats);
    }

    // "Kill" the sweep: keep only a prefix of the manifest.
    const std::size_t kept = total / 2;
    truncate_to_lines(manifest_, kept);

    // Resume from the truncated manifest, appending to it.
    const exp::SweepResume resume = exp::SweepResume::from_jsonl(manifest_);
    ASSERT_EQ(resume.completed.size(), kept);
    CountingSink counter;
    {
      exp::JsonlSink jsonl(manifest_, /*append=*/true);
      const auto stats =
          runner.run(/*threads=*/2, {&jsonl, &counter}, &resume);
      exp::write_point_stats_csv(resumed_csv_, runner.labels(), stats);
    }
    EXPECT_EQ(counter.replayed_, kept);
    EXPECT_EQ(counter.live_, total - kept);

    // The acceptance criterion: byte-identical aggregate CSV, and the
    // resumed manifest ends complete.
    EXPECT_EQ(slurp(full_csv_), slurp(resumed_csv_));
    std::size_t lines = 0;
    std::ifstream in(manifest_);
    for (std::string line; std::getline(in, line);) lines += !line.empty();
    EXPECT_EQ(lines, total);
  }
};

TEST_F(SweepResumeTest, CountingEngineByteIdenticalAggregate) {
  SweepSpec spec;
  spec.name = "counting";
  spec.base.protocol = "3-majority";
  spec.base.n = 600;
  spec.base.k = 2;
  spec.base.engine = EngineChoice::kCounting;
  spec.base.seed = 1;
  SweepAxis k_axis;
  k_axis.name = "k";
  for (std::uint64_t k : {2, 4, 8}) {
    k_axis.points.push_back(support::Json::object().set("k", k));
  }
  spec.axes = {k_axis};
  spec.replications = 3;
  spec.seed = 0xc0;
  expect_byte_identical_resume(spec);
}

TEST_F(SweepResumeTest, AgentEngineByteIdenticalAggregate) {
  SweepSpec spec;
  spec.name = "agent";
  spec.base.protocol = "3-majority";
  spec.base.n = 256;
  spec.base.k = 2;
  spec.base.init.kind = "biased";
  spec.base.init.param = 0.1;
  spec.base.topology = TopologySpec{.kind = "random-regular", .degree = 6};
  spec.base.max_rounds = 300;
  SweepAxis zealots;
  zealots.name = "zealots";
  for (std::uint64_t count : {0, 16}) {
    zealots.points.push_back(support::Json::object().set(
        "zealots", support::Json::object()
                       .set("opinion", std::uint64_t{1})
                       .set("count", count)));
  }
  spec.axes = {zealots};
  spec.replications = 3;
  spec.seed = 0xa6;
  expect_byte_identical_resume(spec);
}

TEST_F(SweepResumeTest, AsyncEngineByteIdenticalAggregate) {
  SweepSpec spec;
  spec.name = "async";
  spec.base.protocol = "3-majority";
  spec.base.n = 300;
  spec.base.k = 4;
  spec.base.engine = EngineChoice::kAsync;
  spec.base.max_rounds = 5000;
  SweepAxis bias;
  bias.name = "bias";
  for (double param : {0.1, 0.3}) {
    bias.points.push_back(support::Json::object().set(
        "init", support::Json::object()
                    .set("kind", "biased")
                    .set("param", param)));
  }
  spec.axes = {bias};
  spec.replications = 3;
  spec.seed = 0xa5;
  expect_byte_identical_resume(spec);
}

TEST_F(SweepResumeTest, PairwiseEngineByteIdenticalAggregate) {
  SweepSpec spec;
  spec.name = "pairwise";
  spec.base.protocol = "voter";
  spec.base.n = 150;
  spec.base.k = 2;
  spec.base.engine = EngineChoice::kPairwise;
  spec.base.init.kind = "biased";
  spec.base.init.param = 0.3;
  spec.base.max_rounds = 4000;
  SweepAxis ns;
  ns.name = "n";
  for (std::uint64_t n : {100, 150}) {
    ns.points.push_back(support::Json::object().set("n", n));
  }
  spec.axes = {ns};
  spec.replications = 3;
  spec.seed = 0xb1;
  expect_byte_identical_resume(spec);
}

TEST_F(SweepResumeTest, MismatchedManifestIsRejected) {
  SweepSpec spec;
  spec.base.protocol = "3-majority";
  spec.base.n = 200;
  spec.base.k = 2;
  spec.replications = 4;
  spec.seed = 1;
  const SweepRunner runner(spec);
  {
    exp::JsonlSink jsonl(manifest_);
    runner.run(/*threads=*/1, {&jsonl});
  }
  // Same grid, different master seed: derived trial seeds cannot match.
  SweepSpec other = spec;
  other.seed = 2;
  const SweepRunner other_runner(other);
  const exp::SweepResume resume = exp::SweepResume::from_jsonl(manifest_);
  EXPECT_THROW(other_runner.run(/*threads=*/1, {}, &resume),
               std::invalid_argument);
}

}  // namespace
}  // namespace consensus::api
