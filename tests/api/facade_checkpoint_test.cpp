// Checkpoint/resume through the facade, for ALL FOUR engines: the
// engine-generic core::EngineState hooks must continue the trajectory and
// the random stream bit-exactly, and the self-contained facade checkpoint
// file (spec + engine state + RNG) must restore through a freshly built
// Simulation. This extends the counting-only guarantee of
// tests/core/checkpoint_test.cpp to agent/async/pairwise.
#include <gtest/gtest.h>

#include <cstdio>

#include "consensus/api/simulation.hpp"
#include "consensus/core/checkpoint.hpp"
#include "test_util.hpp"

namespace consensus::api {
namespace {

ScenarioSpec counting_spec() {
  ScenarioSpec spec;
  spec.protocol = "3-majority";
  spec.n = 2000;
  spec.k = 16;
  spec.engine = EngineChoice::kCounting;
  spec.seed = 99;
  return spec;
}

ScenarioSpec agent_spec() {
  ScenarioSpec spec;
  spec.protocol = "3-majority";
  spec.n = 512;
  spec.k = 4;
  spec.topology = TopologySpec{.kind = "random-regular", .degree = 8};
  spec.zealots = ZealotSpec{.opinion = 1, .count = 24};
  spec.seed = 7;
  return spec;
}

ScenarioSpec async_spec() {
  ScenarioSpec spec;
  spec.protocol = "3-majority";
  spec.n = 600;
  spec.k = 8;
  spec.engine = EngineChoice::kAsync;
  spec.seed = 21;
  return spec;
}

ScenarioSpec degree_class_spec() {
  ScenarioSpec spec;
  spec.protocol = "3-majority";
  spec.n = 500;
  spec.k = 4;
  spec.topology = TopologySpec{.kind = "configuration-model-annealed",
                               .degrees = {3, 8, 40},
                               .class_sizes = {400, 90, 10}};
  spec.seed = 13;
  return spec;
}

ScenarioSpec pairwise_spec() {
  ScenarioSpec spec;
  spec.protocol = "voter";
  spec.n = 400;
  spec.k = 3;
  spec.engine = EngineChoice::kPairwise;
  spec.seed = 5;
  return spec;
}

/// Step `pre` rounds, capture, step `post` more (the reference); a fresh
/// engine restored from the capture and stepped `post` must match the
/// reference configuration and round counter exactly.
void expect_bit_exact_stream_continuation(const ScenarioSpec& spec) {
  auto sim = Simulation::from_spec(spec);
  const auto reference = sim.make_engine();
  support::Rng rng(spec.seed);
  for (int t = 0; t < 7; ++t) reference->step(rng);
  const core::EngineCheckpoint checkpoint =
      core::capture_engine(*reference, rng);
  for (int t = 0; t < 9; ++t) reference->step(rng);

  const auto restored = sim.make_engine();
  support::Rng restored_rng(0xdead);  // position is overwritten by restore
  core::restore_engine(*restored, restored_rng, checkpoint);
  EXPECT_EQ(restored->rounds_elapsed(), 7u);
  for (int t = 0; t < 9; ++t) restored->step(restored_rng);

  EXPECT_EQ(restored->configuration(), reference->configuration());
  EXPECT_EQ(restored->rounds_elapsed(), reference->rounds_elapsed());
  EXPECT_EQ(restored_rng.state(), rng.state());
}

TEST(EngineStateHooks, CountingStreamContinuation) {
  expect_bit_exact_stream_continuation(counting_spec());
}

TEST(EngineStateHooks, AgentStreamContinuation) {
  expect_bit_exact_stream_continuation(agent_spec());
}

TEST(EngineStateHooks, AsyncStreamContinuation) {
  expect_bit_exact_stream_continuation(async_spec());
}

TEST(EngineStateHooks, PairwiseStreamContinuation) {
  expect_bit_exact_stream_continuation(pairwise_spec());
}

TEST(EngineStateHooks, DegreeClassStreamContinuation) {
  expect_bit_exact_stream_continuation(degree_class_spec());
}

TEST(EngineStateHooks, DegreeClassStateCarriesPerClassCounts) {
  auto sim = Simulation::from_spec(degree_class_spec());
  const auto engine = sim.make_engine();
  const core::EngineState state = engine->capture_state();
  EXPECT_EQ(state.kind, "degree-class");
  // Three classes, k = 4 slots each, flattened in class order.
  EXPECT_EQ(state.counts.size(), 12u);
  std::uint64_t total = 0;
  for (std::uint64_t c : state.counts) total += c;
  EXPECT_EQ(total, 500u);
}

TEST(EngineStateHooks, AgentStatePreservesZealots) {
  auto sim = Simulation::from_spec(agent_spec());
  const auto engine = sim.make_engine();
  const core::EngineState state = engine->capture_state();
  EXPECT_EQ(state.kind, "agent");
  EXPECT_EQ(state.opinions.size(), 512u);
  ASSERT_EQ(state.frozen.size(), 512u);
  std::size_t frozen = 0;
  for (std::uint8_t f : state.frozen) frozen += f;
  EXPECT_EQ(frozen, 24u);
}

TEST(EngineStateHooks, RestoreRejectsKindMismatch) {
  auto counting_sim = Simulation::from_spec(counting_spec());
  auto async_sim = Simulation::from_spec(async_spec());
  const auto counting_engine = counting_sim.make_engine();
  const auto async_engine = async_sim.make_engine();
  EXPECT_THROW(async_engine->restore_state(counting_engine->capture_state()),
               std::invalid_argument);
  EXPECT_THROW(counting_engine->restore_state(async_engine->capture_state()),
               std::invalid_argument);
}

class FacadeCheckpointTest : public ::testing::Test {
 protected:
  /// Per-(test, process) file — see testing::unique_temp_path.
  std::string path_ = consensus::testing::unique_temp_path(".ckpt");
  void TearDown() override { std::remove(path_.c_str()); }

  /// run() to an early max_rounds cut, checkpoint, restore through a
  /// rebuilt Simulation, continue — must land exactly where an
  /// uninterrupted run with the full budget lands.
  void expect_resume_matches_uninterrupted(ScenarioSpec spec) {
    constexpr std::uint64_t kCut = 5;
    constexpr std::uint64_t kFull = 4000;

    spec.max_rounds = kCut;
    auto sim = Simulation::from_spec(spec);
    const auto interrupted = sim.run();
    ASSERT_FALSE(interrupted.reached_consensus)
        << "fixture scenario reached consensus before the cut";
    sim.save_checkpoint(path_);

    ScenarioSpec full = spec;
    full.max_rounds = kFull;
    auto reference_sim = Simulation::from_spec(full);
    const auto reference = reference_sim.run();

    const ScenarioSpec embedded = Simulation::checkpoint_spec(path_);
    EXPECT_EQ(embedded, spec);
    auto resumed_sim = Simulation::from_spec(embedded);
    support::Rng rng;
    const auto engine = resumed_sim.restore_engine(path_, rng);
    EXPECT_EQ(engine->rounds_elapsed(), kCut);

    core::RunOptions options;
    options.max_rounds = kFull - kCut;
    const auto resumed = core::run_to_consensus(*engine, rng, options);

    EXPECT_EQ(resumed.reached_consensus, reference.reached_consensus);
    EXPECT_EQ(engine->configuration(),
              reference_sim.last_engine()->configuration());
    if (reference.reached_consensus) {
      EXPECT_EQ(resumed.winner, reference.winner);
      EXPECT_EQ(kCut + resumed.rounds, reference.rounds);
    }
  }
};

TEST_F(FacadeCheckpointTest, CountingResumeIsInvisible) {
  expect_resume_matches_uninterrupted(counting_spec());
}

TEST_F(FacadeCheckpointTest, AgentResumeIsInvisible) {
  expect_resume_matches_uninterrupted(agent_spec());
}

TEST_F(FacadeCheckpointTest, AsyncResumeIsInvisible) {
  expect_resume_matches_uninterrupted(async_spec());
}

TEST_F(FacadeCheckpointTest, PairwiseResumeIsInvisible) {
  expect_resume_matches_uninterrupted(pairwise_spec());
}

TEST_F(FacadeCheckpointTest, DegreeClassResumeIsInvisible) {
  expect_resume_matches_uninterrupted(degree_class_spec());
}

TEST_F(FacadeCheckpointTest, PeriodicCadenceWritesResumableCheckpoints) {
  // Cut a run at max_rounds = 12 with checkpoint_every_rounds = 5: the
  // file left on disk is the round-10 snapshot (the last cadence point).
  // Restoring it and stepping the remaining 2 rounds must land exactly on
  // the interrupted run's final state — a crash between cadence points
  // costs at most checkpoint_every_rounds - 1 rounds of work.
  ScenarioSpec spec = counting_spec();
  spec.max_rounds = 12;
  spec.checkpoint_every_rounds = 5;
  auto sim = Simulation::from_spec(spec);
  sim.set_checkpoint_file(path_);
  const auto result = sim.run();
  ASSERT_FALSE(result.reached_consensus)
      << "fixture scenario reached consensus before the cut";

  const ScenarioSpec embedded = Simulation::checkpoint_spec(path_);
  EXPECT_EQ(embedded, spec);
  auto resumed_sim = Simulation::from_spec(embedded);
  support::Rng rng;
  const auto engine = resumed_sim.restore_engine(path_, rng);
  EXPECT_EQ(engine->rounds_elapsed(), 10u);

  core::RunOptions options;
  options.max_rounds = 2;
  core::run_to_consensus(*engine, rng, options);
  EXPECT_EQ(engine->rounds_elapsed(), 12u);
  EXPECT_EQ(engine->configuration(), sim.last_engine()->configuration());
}

TEST_F(FacadeCheckpointTest, CadenceWithoutRegisteredFileThrows) {
  ScenarioSpec spec = counting_spec();
  spec.checkpoint_every_rounds = 5;
  auto sim = Simulation::from_spec(spec);
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST_F(FacadeCheckpointTest, SaveBeforeRunThrows) {
  auto sim = Simulation::from_spec(counting_spec());
  EXPECT_THROW(sim.save_checkpoint(path_), std::logic_error);
}

TEST_F(FacadeCheckpointTest, RestoreRejectsForeignScenario) {
  ScenarioSpec spec = counting_spec();
  spec.max_rounds = 3;
  auto sim = Simulation::from_spec(spec);
  sim.run();
  sim.save_checkpoint(path_);
  // Same engine kind and shape (n, k), different protocol: restoring it
  // here would silently continue the wrong chain.
  ScenarioSpec other = spec;
  other.protocol = "2-choices";
  auto other_sim = Simulation::from_spec(other);
  support::Rng rng;
  EXPECT_THROW(other_sim.restore_engine(path_, rng), std::invalid_argument);
}

TEST_F(FacadeCheckpointTest, EngineCheckpointFileRoundTrip) {
  auto sim = Simulation::from_spec(agent_spec());
  const auto engine = sim.make_engine();
  support::Rng rng(3);
  for (int t = 0; t < 4; ++t) engine->step(rng);
  const auto checkpoint = core::capture_engine(*engine, rng);
  core::save_engine_checkpoint(checkpoint, path_);
  EXPECT_EQ(core::load_engine_checkpoint(path_), checkpoint);
}

}  // namespace
}  // namespace consensus::api
