// Graph generators for the §2.5 "other graphs" extension experiments.
// All generators are deterministic given the Rng stream.
#pragma once

#include <cstdint>

#include "consensus/graph/graph.hpp"
#include "consensus/support/rng.hpp"

namespace consensus::graph {

/// Ring: each vertex adjacent to its two neighbours (n >= 3).
Graph cycle(std::uint64_t n);

/// rows x cols torus (wrap-around 4-neighbour grid).
Graph torus2d(std::uint64_t rows, std::uint64_t cols);

/// G(n, p) Erdős–Rényi; isolated vertices get a random patch edge so the
/// engines' min-degree precondition holds.
Graph erdos_renyi(std::uint64_t n, double p, support::Rng& rng);

/// Random d-regular multigraph via the pairing (configuration) model with
/// rejection of self-loops/multi-edges, retried a few times then accepted
/// as a near-regular simple graph. n*d must be even, d < n.
Graph random_regular(std::uint64_t n, std::uint64_t d, support::Rng& rng);

/// Quenched planted-partition SBM as an explicit CSR: `blocks` near-equal
/// contiguous blocks (the sbm_block_offsets layout), each intra-block pair
/// an edge with probability intra_p, each inter-block pair with inter_p.
/// Geometric skip-sampling over the pair space makes generation O(|E|),
/// not O(n²); isolated vertices get a random patch edge so the engines'
/// min-degree precondition holds. Requires n >= 2, 1 <= blocks <= n,
/// intra_p in (0,1], inter_p in [0,1].
Graph sbm_planted(std::uint64_t n, std::uint64_t blocks, double intra_p,
                  double inter_p, support::Rng& rng);

/// One quenched configuration-model sample as an explicit CSR: vertices
/// laid out contiguously by degree class (the DegreeHistogram layout, so
/// vertex v of class c has target degree d_c), all Σ d_c·n_c stubs paired
/// by a uniform shuffle. Self-loops and multi-edges are kept (the standard
/// pairing model); an odd total stub count drops one stub. Vertices left
/// isolated (possible only via the dropped stub) get a random patch edge so
/// the engines' min-degree precondition holds. Materialises O(M) memory —
/// use the implicit kinds at large n.
Graph configuration_model(const DegreeHistogram& histogram,
                          support::Rng& rng);

/// Star: vertex 0 joined to all others.
Graph star(std::uint64_t n);

/// Two K_{n/2} cliques joined by `bridges` random cross edges — the
/// core-periphery-ish slow-mixing stress topology.
Graph two_cliques_bridge(std::uint64_t n, std::uint64_t bridges,
                         support::Rng& rng);

}  // namespace consensus::graph
