// Voter model (1-Choice): each vertex adopts the opinion of one uniformly
// random neighbour. The classical baseline: consensus in Θ(n) rounds on K_n
// regardless of k, with win probability proportional to initial support.
// Counting path: next counts ~ Multinomial(n, α) exactly.
#pragma once

#include "consensus/core/fused.hpp"

namespace consensus::core {

class Voter final : public FusedProtocol<Voter> {
 public:
  std::string_view name() const noexcept override { return "voter"; }
  unsigned samples_per_update() const noexcept override { return 1; }

  /// Non-virtual rule body shared by the virtual entry point and the fused
  /// engine kernels (see the Draws concept in protocol.hpp).
  template <typename Draws>
  Opinion update_from_draws(Opinion current, Draws& draws,
                            support::Rng& rng) const {
    (void)current;
    return draws.draw(rng);
  }

  Opinion update(Opinion current, OpinionSampler& neighbors,
                 support::Rng& rng) const override {
    SamplerDraws draws{neighbors};
    return update_from_draws(current, draws, rng);
  }

  bool step_counts(const Configuration& cur, std::vector<std::uint64_t>& next,
                   support::Rng& rng) const override;

  /// α restricted to the alive index: one Multinomial(n, ·) over a slots
  /// per round (the rule is anonymous).
  bool outcome_distribution_alive(Opinion current, const Configuration& cur,
                                  std::vector<double>& out) const override;

  /// Mixture law (block-counting engine): the outcome IS the neighbour
  /// draw, so out = sampling verbatim.
  bool outcome_distribution_mixture(Opinion current,
                                    std::span<const double> sampling,
                                    std::uint64_t n_hint,
                                    std::vector<double>& out) const override;

  bool outcome_depends_on_current() const noexcept override { return false; }
};

}  // namespace consensus::core
