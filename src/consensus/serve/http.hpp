// Minimal HTTP/1.1 framing over support::TcpStream — just enough protocol
// for the serving daemon and its client: request parsing (method, target
// split into path + query, headers, Content-Length body), fixed-length
// responses, and chunked transfer encoding for the JSONL job streams whose
// length is unknown up front. No external dependencies; not a general web
// server (no pipelining, no TLS, one request per read_request call).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "consensus/support/socket.hpp"

namespace consensus::serve {

struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string target;  // raw request target, e.g. "/jobs/3?wait=0"
  std::string path;    // target before '?'
  std::map<std::string, std::string> query;    // decoded key=value pairs
  std::map<std::string, std::string> headers;  // keys lowercased
  std::string body;

  /// Query parameter or `fallback` when absent.
  std::string query_value(const std::string& key,
                          const std::string& fallback = "") const;
};

/// Reads one request. Returns false on a clean EOF before any bytes (the
/// peer closed an idle connection); throws std::runtime_error on malformed
/// framing or a body larger than `max_body`.
bool read_request(support::TcpStream& stream, HttpRequest* request,
                  std::size_t max_body = 64u << 20);

std::string_view status_reason(int status) noexcept;

/// Extra response headers, e.g. {{"Retry-After", "1"}} on a 503.
using HttpHeaders = std::vector<std::pair<std::string, std::string>>;

/// Fixed-length response (Content-Length framing), connection kept open.
void write_response(support::TcpStream& stream, int status,
                    std::string_view content_type, std::string_view body,
                    const HttpHeaders& extra_headers = {});

/// Chunked response writer for streams of unknown length (JSONL job
/// output). Emits the header on construction; each write() is one chunk;
/// finish() sends the terminating chunk (also run by the destructor).
class ChunkedWriter {
 public:
  ChunkedWriter(support::TcpStream& stream, int status,
                std::string_view content_type);
  ~ChunkedWriter();

  ChunkedWriter(const ChunkedWriter&) = delete;
  ChunkedWriter& operator=(const ChunkedWriter&) = delete;

  void write(std::string_view data);
  void finish();

 private:
  support::TcpStream* stream_;
  bool finished_ = false;
};

// ------------------------------------------------------------- client side

struct HttpResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  // keys lowercased
  std::string body;  // chunked bodies arrive decoded
};

/// One request/response exchange on a fresh connection. Blocks until the
/// full response (chunked streams included) has arrived — the job-stream
/// endpoint therefore blocks until the job finishes, which is exactly what
/// the submit CLI and the tests want.
HttpResponse http_request(const std::string& host, std::uint16_t port,
                          const std::string& method, const std::string& target,
                          std::string_view body = {},
                          std::string_view content_type = "application/json");

/// Streaming variant: `on_chunk` sees each decoded chunk as it arrives
/// (JSONL lines may span chunks; callers re-split on '\n').
HttpResponse http_request_stream(
    const std::string& host, std::uint16_t port, const std::string& method,
    const std::string& target, std::string_view body,
    std::string_view content_type,
    const std::function<void(std::string_view)>& on_chunk);

/// Bounded retry for transient failures. Delays grow exponentially from
/// `base_delay_ms` (capped at `max_delay_ms`) with deterministic jitter
/// from `jitter_seed` — determinism keeps retry tests exact, and distinct
/// seeds de-synchronize a fleet of clients hammering a recovering daemon.
/// A 503's Retry-After header (integer seconds) overrides the computed
/// delay: the server knows its own backlog better than the client does.
struct RetryPolicy {
  std::size_t max_attempts = 5;      // total tries, first one included
  std::uint64_t base_delay_ms = 100;
  std::uint64_t max_delay_ms = 5000;
  std::uint64_t jitter_seed = 0;
};

/// http_request with bounded retry: transport errors (refused, reset,
/// truncated response) and 503 responses retry per `policy`; every other
/// status returns immediately (4xx/5xx are the caller's problem, not a
/// transient). Exhausting attempts rethrows the last transport error or
/// returns the last 503.
HttpResponse http_request_retry(const std::string& host, std::uint16_t port,
                                const std::string& method,
                                const std::string& target,
                                std::string_view body,
                                std::string_view content_type,
                                const RetryPolicy& policy = {});

/// Follows a job's NDJSON stream (`GET /jobs/<id>`) to completion,
/// reconnecting with the `from=<lines-seen>` cursor when the connection
/// drops mid-stream — each complete line is delivered to `on_line`
/// (newline stripped) exactly once across reconnects, and a torn partial
/// line is re-fetched whole on the next attempt. Reconnects draw on
/// `policy`'s attempt budget, which refills whenever an attempt makes
/// progress (a stream that advances is alive, however slowly). Returns the
/// final attempt's response with `body` rebuilt as all delivered lines.
/// Non-200 responses return immediately; an exhausted budget rethrows.
HttpResponse follow_job_stream(
    const std::string& host, std::uint16_t port, std::uint64_t job_id,
    const std::function<void(std::string_view)>& on_line,
    const RetryPolicy& policy = {});

}  // namespace consensus::serve
