// support/simd_kernels contract tests: the AVX2 path and the scalar
// fallback must be BIT-IDENTICAL (both follow the fixed 4-lane-strided
// product order), the kernel must implement the h-majority histogram term
// (probability mass split uniformly over the argmax set), and flipping the
// runtime toggle must change throughput only — pinned end to end through
// HMajority's law.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "consensus/core/h_majority.hpp"
#include "consensus/core/init.hpp"
#include "consensus/support/rng.hpp"
#include "consensus/support/sampling.hpp"
#include "consensus/support/simd_kernels.hpp"
#include "consensus/support/thread_pool.hpp"

namespace consensus::support {
namespace {

/// Straightforward reference: sequential product, explicit argmax set.
void reference_term(const double* w, std::size_t stride,
                    const std::uint32_t* hist, std::size_t a,
                    double prefactor, std::vector<double>& acc) {
  double p = prefactor;
  std::uint32_t best = 0;
  for (std::size_t i = 0; i < a; ++i) {
    p *= w[i * stride + hist[i]];
    if (hist[i] > best) best = hist[i];
  }
  std::vector<std::size_t> tied;
  for (std::size_t i = 0; i < a; ++i) {
    if (hist[i] == best) tied.push_back(i);
  }
  for (std::size_t i : tied) {
    acc[i] += p / static_cast<double>(tied.size());
  }
}

struct RandomCase {
  std::vector<double> w;
  std::vector<std::uint32_t> hist;
  std::size_t a;
  unsigned h;
};

RandomCase make_case(Rng& rng, std::size_t a, unsigned h) {
  RandomCase c;
  c.a = a;
  c.h = h;
  c.w.resize(a * (h + 1));
  for (double& x : c.w) x = rng.uniform(0.01, 1.5);
  c.hist.assign(a, 0);
  // A random weak composition of h over a slots.
  for (unsigned s = 0; s < h; ++s) {
    ++c.hist[static_cast<std::size_t>(rng.uniform_below(a))];
  }
  return c;
}

TEST(SimdKernels, ScalarPathMatchesReferenceSemanticsAndTolerance) {
  Rng rng(1);
  for (const std::size_t a : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 13u, 16u, 33u}) {
    for (const unsigned h : {1u, 3u, 7u, 12u}) {
      const RandomCase c = make_case(rng, a, h);
      std::vector<double> acc_scalar(a, 0.0), acc_ref(a, 0.0);
      accumulate_histogram_term_scalar(c.w.data(), h + 1, c.hist.data(), a,
                                       2.5, acc_scalar.data());
      reference_term(c.w.data(), h + 1, c.hist.data(), a, 2.5, acc_ref);
      for (std::size_t i = 0; i < a; ++i) {
        // Same argmax/tie semantics exactly; product order differs from
        // the sequential reference only in rounding.
        if (acc_ref[i] == 0.0) {
          EXPECT_EQ(acc_scalar[i], 0.0) << "a=" << a << " h=" << h;
        } else {
          EXPECT_NEAR(acc_scalar[i] / acc_ref[i], 1.0, 1e-12)
              << "a=" << a << " h=" << h << " slot " << i;
        }
      }
    }
  }
}

TEST(SimdKernels, VectorAndScalarPathsAreBitIdentical) {
  if (!simd_kernels_available()) {
    GTEST_SKIP() << "no AVX2 at runtime: both paths are the scalar code";
  }
  Rng rng(2);
  for (const std::size_t a : {1u, 4u, 6u, 8u, 15u, 16u, 50u, 129u}) {
    for (const unsigned h : {1u, 2u, 5u, 9u, 15u}) {
      const RandomCase c = make_case(rng, a, h);
      std::vector<double> acc_simd(a, 0.0), acc_scalar(a, 0.0);
      set_simd_kernels_enabled(true);
      accumulate_histogram_term(c.w.data(), h + 1, c.hist.data(), a, 1.75,
                                acc_simd.data());
      set_simd_kernels_enabled(false);
      accumulate_histogram_term(c.w.data(), h + 1, c.hist.data(), a, 1.75,
                                acc_scalar.data());
      set_simd_kernels_enabled(true);
      for (std::size_t i = 0; i < a; ++i) {
        EXPECT_EQ(acc_simd[i], acc_scalar[i])
            << "a=" << a << " h=" << h << " slot " << i
            << " (bit-identity contract broken)";
      }
    }
  }
}

TEST(SimdKernels, PowWeightTableFoldsInverseFactorials) {
  const std::vector<double> alpha = {0.5, 0.25, 0.125};
  const unsigned h = 4;
  std::vector<double> inv_fact = {1.0, 1.0, 0.5, 1.0 / 6.0, 1.0 / 24.0};
  std::vector<double> w;
  build_pow_weight_table(alpha, h, inv_fact, w);
  ASSERT_EQ(w.size(), alpha.size() * (h + 1));
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    for (unsigned j = 0; j <= h; ++j) {
      EXPECT_NEAR(w[i * (h + 1) + j],
                  std::pow(alpha[i], j) * inv_fact[j], 1e-15)
          << i << "," << j;
    }
  }
}

TEST(SimdKernels, HMajorityLawBitIdenticalWithToggle) {
  // End to end through the protocol, covering the serial path, the
  // sharded path (histograms >= kParallelThreshold), and the ring-staged
  // enumeration the vector kernel runs behind.
  const core::Configuration small = core::balanced(10000, 10);  // serial
  const core::Configuration big = core::balanced(100000, 25);   // sharded
  for (const core::Configuration* cfg : {&small, &big}) {
    core::HMajority protocol(6);
    std::vector<double> law_simd, law_scalar;
    set_simd_kernels_enabled(true);
    ASSERT_TRUE(protocol.outcome_distribution_alive(0, *cfg, law_simd));
    set_simd_kernels_enabled(false);
    ASSERT_TRUE(protocol.outcome_distribution_alive(0, *cfg, law_scalar));
    set_simd_kernels_enabled(true);
    ASSERT_EQ(law_simd.size(), law_scalar.size());
    for (std::size_t i = 0; i < law_simd.size(); ++i) {
      EXPECT_EQ(law_simd[i], law_scalar[i]) << i;
    }
    double total = 0.0;
    for (double p : law_simd) total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(SimdKernels, HMajorityLawStillPoolInvariantWithSimd) {
  // The staged enumeration must preserve the bit-identical-across-thread-
  // counts guarantee of the sharded reduction.
  const core::Configuration big = core::balanced(100000, 25);
  core::HMajority serial(6);
  core::HMajority pooled(6);
  ThreadPool pool(8);
  pooled.set_thread_pool(&pool);
  std::vector<double> law_serial, law_pooled;
  ASSERT_TRUE(serial.outcome_distribution_alive(0, big, law_serial));
  ASSERT_TRUE(pooled.outcome_distribution_alive(0, big, law_pooled));
  ASSERT_EQ(law_serial.size(), law_pooled.size());
  for (std::size_t i = 0; i < law_serial.size(); ++i) {
    EXPECT_EQ(law_serial[i], law_pooled[i]) << i;
  }
}

}  // namespace
}  // namespace consensus::support
