#include "consensus/core/checkpoint.hpp"

#include <fstream>
#include <iterator>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "consensus/support/durable_file.hpp"
#include "consensus/support/sampling.hpp"

namespace consensus::core {

namespace {
constexpr std::string_view kMagic = "consensuslib-checkpoint-v1";
constexpr std::string_view kEngineMagic = "consensuslib-engine-checkpoint-v1";
constexpr std::string_view kEngineMagicV2 =
    "consensuslib-engine-checkpoint-v2";

/// Reads one "<label> <u32>" version line and checks it against this
/// build's value — the clear-error half of the versioned-state contract.
std::uint32_t read_version_line(std::istream& in, std::string_view label,
                                std::uint32_t expected) {
  std::string name;
  std::uint32_t value = 0;
  in >> name >> value;
  if (!in || name != label) {
    throw std::runtime_error("read_engine_checkpoint: expected '" +
                             std::string(label) + "' line, got '" + name +
                             "'");
  }
  in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
  if (value != expected) {
    throw std::runtime_error(
        "read_engine_checkpoint: checkpoint was written under " +
        std::string(label) + " " + std::to_string(value) +
        " but this build uses " + std::to_string(expected) +
        " — replay it with the build that wrote it");
  }
  return value;
}

template <typename T>
void write_section(std::ostream& out, std::string_view name,
                   const std::vector<T>& values) {
  out << name << ' ' << values.size() << '\n';
  for (const T& v : values) out << static_cast<std::uint64_t>(v) << ' ';
  out << '\n';
}

template <typename T>
std::vector<T> read_section(std::istream& in, std::string_view name) {
  std::string label;
  std::size_t size = 0;
  in >> label >> size;
  if (!in || label != name) {
    throw std::runtime_error("read_engine_checkpoint: expected section '" +
                             std::string(name) + "', got '" + label + "'");
  }
  std::vector<T> values(size);
  for (T& v : values) {
    std::uint64_t word = 0;
    in >> word;
    v = static_cast<T>(word);
  }
  if (!in) {
    throw std::runtime_error("read_engine_checkpoint: truncated section '" +
                             std::string(name) + "'");
  }
  return values;
}

}  // namespace

// ------------------------------------------------------ engine-generic v2

EngineCheckpoint capture_engine(const Engine& engine,
                                const support::Rng& rng) {
  EngineCheckpoint cp;
  cp.state_version = kEngineStateVersion;
  cp.rng_draw_path_version = support::kRngDrawPathVersion;
  cp.state = engine.capture_state();
  cp.rng_state = rng.state();
  return cp;
}

void restore_engine(Engine& engine, support::Rng& rng,
                    const EngineCheckpoint& checkpoint) {
  engine.restore_state(checkpoint.state);
  rng.set_state(checkpoint.rng_state);
}

void write_engine_checkpoint(std::ostream& out,
                             const EngineCheckpoint& checkpoint) {
  out << kEngineMagicV2 << '\n'
      << "state_version " << checkpoint.state_version << '\n'
      << "rng_draw_path_version " << checkpoint.rng_draw_path_version << '\n'
      << checkpoint.state.kind << '\n'
      << checkpoint.state.progress << '\n';
  for (std::uint64_t word : checkpoint.rng_state) out << word << ' ';
  out << '\n';
  write_section(out, "counts", checkpoint.state.counts);
  write_section(out, "opinions", checkpoint.state.opinions);
  write_section(out, "frozen", checkpoint.state.frozen);
  if (!out) throw std::runtime_error("write_engine_checkpoint: write failed");
}

EngineCheckpoint read_engine_checkpoint(std::istream& in) {
  std::string magic;
  std::getline(in, magic);
  EngineCheckpoint cp;
  if (magic == kEngineMagicV2) {
    cp.state_version =
        read_version_line(in, "state_version", kEngineStateVersion);
    cp.rng_draw_path_version = read_version_line(
        in, "rng_draw_path_version", support::kRngDrawPathVersion);
  } else if (magic == kEngineMagic) {
    // Legacy v1 section: written before versions were recorded. Treat as
    // current — the file predates the first draw-path bump that shipped
    // with the versioning scheme itself.
    cp.state_version = kEngineStateVersion;
    cp.rng_draw_path_version = support::kRngDrawPathVersion;
  } else {
    throw std::runtime_error("read_engine_checkpoint: bad magic '" + magic +
                             "'");
  }
  std::getline(in, cp.state.kind);
  if (cp.state.kind.empty()) {
    throw std::runtime_error("read_engine_checkpoint: missing engine kind");
  }
  in >> cp.state.progress;
  for (auto& word : cp.rng_state) in >> word;
  if (!in) throw std::runtime_error("read_engine_checkpoint: corrupt header");
  cp.state.counts = read_section<std::uint64_t>(in, "counts");
  cp.state.opinions = read_section<Opinion>(in, "opinions");
  cp.state.frozen = read_section<std::uint8_t>(in, "frozen");
  return cp;
}

void save_engine_checkpoint(const EngineCheckpoint& checkpoint,
                            const std::string& path) {
  std::ostringstream out;
  write_engine_checkpoint(out, checkpoint);
  support::write_file_durable(path, support::with_crc_line(out.str()),
                              "checkpoint.save");
}

EngineCheckpoint load_engine_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("load_engine_checkpoint: cannot open " + path);
  }
  std::string text{std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>()};
  // Legacy v1 files carry no CRC line; everything newer must verify.
  const bool legacy_v1 = text.rfind(kEngineMagic, 0) == 0 &&
                         text.rfind(kEngineMagicV2, 0) != 0;
  if (!legacy_v1) {
    text = support::verify_and_strip_crc_line(
        std::move(text), "load_engine_checkpoint: " + path);
  }
  std::istringstream stream(text);
  return read_engine_checkpoint(stream);
}

// ------------------------------------------- counting-only v1 (wrappers)

Checkpoint capture(const CountingEngine& engine, const support::Rng& rng) {
  const EngineState state = engine.capture_state();
  Checkpoint cp;
  cp.protocol_name = std::string(engine.protocol().name());
  cp.round = state.progress;
  cp.counts = state.counts;
  cp.rng_state = rng.state();
  return cp;
}

void save_checkpoint(const Checkpoint& checkpoint, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_checkpoint: cannot open " + path);
  out << kMagic << '\n'
      << checkpoint.protocol_name << '\n'
      << checkpoint.round << '\n';
  for (std::uint64_t word : checkpoint.rng_state) out << word << ' ';
  out << '\n' << checkpoint.counts.size() << '\n';
  for (std::uint64_t c : checkpoint.counts) out << c << ' ';
  out << '\n';
  if (!out) throw std::runtime_error("save_checkpoint: write failed");
}

Checkpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_checkpoint: cannot open " + path);
  std::string magic;
  std::getline(in, magic);
  if (magic != kMagic)
    throw std::runtime_error("load_checkpoint: bad magic '" + magic + "'");
  Checkpoint cp;
  std::getline(in, cp.protocol_name);
  in >> cp.round;
  for (auto& word : cp.rng_state) in >> word;
  std::size_t k = 0;
  in >> k;
  if (!in || k == 0)
    throw std::runtime_error("load_checkpoint: corrupt count section");
  cp.counts.resize(k);
  for (auto& c : cp.counts) in >> c;
  if (!in) throw std::runtime_error("load_checkpoint: truncated file");
  return cp;
}

RestoredRun restore(const Checkpoint& checkpoint) {
  RestoredRun run;
  run.protocol = make_protocol(checkpoint.protocol_name);
  run.engine = std::make_unique<CountingEngine>(
      *run.protocol, Configuration(checkpoint.counts), checkpoint.round);
  run.rng.set_state(checkpoint.rng_state);
  return run;
}

}  // namespace consensus::core
