#include "consensus/core/counting_engine.hpp"

#include <stdexcept>
#include <vector>

#include "consensus/support/sampling.hpp"

namespace consensus::core {

namespace {

/// OpinionSampler over a prebuilt alias table of the count vector: a random
/// neighbour on K_n with self-loops is a uniformly random vertex, whose
/// opinion is categorical with weights proportional to the counts.
class CountSampler final : public OpinionSampler {
 public:
  CountSampler(const support::AliasTable& table, std::size_t slots) noexcept
      : table_(&table), slots_(slots) {}

  Opinion sample(support::Rng& rng) override {
    return static_cast<Opinion>(table_->sample(rng));
  }

  std::size_t num_slots() const noexcept override { return slots_; }

 private:
  const support::AliasTable* table_;
  std::size_t slots_;
};

}  // namespace

CountingEngine::CountingEngine(const Protocol& protocol, Configuration initial,
                               std::uint64_t start_round)
    : protocol_(&protocol), config_(std::move(initial)), round_(start_round) {}

void CountingEngine::step(support::Rng& rng) {
  // Sparse alive-set path first: it commits through assign_alive_counts
  // (O(a)), so a round never touches the k − a extinct slots at all.
  if (!sparse_step(rng)) {
    if (!protocol_->step_counts(config_, scratch_, rng)) {
      generic_step(rng);
    }
    // Swap (not move) so scratch_ keeps its storage for the next round.
    config_.swap_counts(scratch_);
  }
  ++round_;
}

bool CountingEngine::sparse_step(support::Rng& rng) {
  const auto alive = config_.alive();
  const std::size_t a = alive.size();

  // Anonymous rules: one law, one Multinomial(n, ·) over the alive
  // opinions for the whole round. The compact law sums to 1 by contract,
  // so the total-supplied multinomial overload skips the re-accumulation.
  if (!protocol_->outcome_depends_on_current()) {
    if (!protocol_->outcome_distribution_alive(alive[0], config_, probs_)) {
      return false;
    }
    support::multinomial_into(rng, config_.num_vertices(), probs_, 1.0,
                              compact_);
    config_.assign_alive_counts(compact_);
    return true;
  }

  // Current-dependent rules: one multinomial per alive group, accumulated
  // in compact space. Availability is uniform across groups for a fixed
  // configuration (outcome_distribution_alive contract), so the first
  // probe decides for the round.
  if (!protocol_->outcome_distribution_alive(alive[0], config_, probs_)) {
    return false;
  }
  compact_.assign(a, 0);
  for (std::size_t idx = 0;; ++idx) {
    support::multinomial_into(rng, config_.counts()[alive[idx]], probs_, 1.0,
                              group_out_);
    for (std::size_t j = 0; j < a; ++j) compact_[j] += group_out_[j];
    if (idx + 1 == a) break;
    if (!protocol_->outcome_distribution_alive(alive[idx + 1], config_,
                                               probs_)) {
      throw std::logic_error(
          "CountingEngine: outcome_distribution_alive declined mid-round "
          "(availability must be uniform across groups)");
    }
  }
  config_.assign_alive_counts(compact_);
  return true;
}

void CountingEngine::generic_step(support::Rng& rng) {
  const std::size_t k = config_.num_opinions();
  const auto counts = config_.counts();

  // Anonymous rules (the law ignores the holder's opinion): every vertex
  // shares one outcome law, so the whole round is a single multinomial —
  // and if that one law declines (over budget), so would every per-group
  // call, so don't re-probe k times on the way to the fallback.
  const bool anonymous = !protocol_->outcome_depends_on_current();
  if (anonymous && protocol_->outcome_distribution(0, config_, probs_)) {
    support::multinomial_into(rng, config_.num_vertices(), probs_, scratch_);
    return;
  }

  scratch_.assign(k, 0);
  bool table_ready = false;
  // Availability is uniform across groups for a fixed configuration (see
  // the outcome_distribution contract), so one decline ends the probing —
  // a declining protocol must not be re-asked once per group.
  bool try_batched = !anonymous;
  for (std::size_t c = 0; c < k; ++c) {
    const std::uint64_t members = counts[c];
    if (members == 0) continue;

    // Group-batched path: one multinomial for all `members` vertices.
    if (try_batched && protocol_->outcome_distribution(static_cast<Opinion>(c),
                                                       config_, probs_)) {
      support::multinomial_into(rng, members, probs_, group_out_);
      for (std::size_t j = 0; j < k; ++j) scratch_[j] += group_out_[j];
      continue;
    }
    try_batched = false;

    // Per-vertex fallback. All vertices observe the round-(t−1)
    // configuration (synchronous rule), so one alias table serves the
    // whole round; it is built lazily so batched rounds never pay for it.
    if (!table_ready) {
      weights_.resize(k);
      for (std::size_t i = 0; i < k; ++i) {
        weights_[i] = static_cast<double>(counts[i]);
      }
      table_.rebuild(weights_);
      table_ready = true;
    }
    CountSampler sampler(table_, k);
    for (std::uint64_t v = 0; v < members; ++v) {
      const Opinion next =
          protocol_->update(static_cast<Opinion>(c), sampler, rng);
      ++scratch_[next];
    }
  }
}

EngineState CountingEngine::capture_state() const {
  EngineState state;
  state.kind = "counting";
  state.progress = round_;
  state.counts.assign(config_.counts().begin(), config_.counts().end());
  return state;
}

void CountingEngine::restore_state(const EngineState& state) {
  if (state.kind != "counting") {
    throw std::invalid_argument(
        "CountingEngine::restore_state: state is for engine kind '" +
        state.kind + "'");
  }
  // replace_counts enforces the shape invariants (same k, counts sum to n).
  config_.replace_counts(state.counts);
  round_ = state.progress;
}

}  // namespace consensus::core
