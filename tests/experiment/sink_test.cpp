#include "consensus/experiment/sink.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "test_util.hpp"

namespace consensus::exp {
namespace {

core::RunResult make_result(std::uint64_t rounds, bool consensus = true) {
  core::RunResult res;
  res.reached_consensus = consensus;
  res.rounds = rounds;
  res.winner = 3;
  res.validity = true;
  res.plurality_preserved = rounds % 2 == 0;
  res.initial_gamma = 0.12345678901234567;  // needs lossless doubles
  res.initial_margin = 1e-17;
  res.initial_support = 16;
  return res;
}

TEST(AggregatePoint, HandlesZeroReplications) {
  // A point whose trials were all skipped must aggregate to an empty
  // PointStats instead of dividing by zero.
  const PointStats stats = aggregate_point(7, {});
  EXPECT_EQ(stats.point_index, 7u);
  EXPECT_EQ(stats.replications, 0u);
  EXPECT_EQ(stats.consensus_reached, 0u);
  EXPECT_DOUBLE_EQ(stats.success_rate, 0.0);
  EXPECT_DOUBLE_EQ(stats.plurality_ci.estimate, 0.0);
  EXPECT_EQ(stats.rounds.n, 0u);
}

TEST(AggregatePoint, MatchesHandComputedValues) {
  std::vector<core::RunResult> results;
  results.push_back(make_result(10));
  results.push_back(make_result(20));
  results.push_back(make_result(0, /*consensus=*/false));
  const PointStats stats =
      aggregate_point(0, {results.data(), results.size()});
  EXPECT_EQ(stats.replications, 3u);
  EXPECT_EQ(stats.consensus_reached, 2u);
  EXPECT_DOUBLE_EQ(stats.success_rate, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(stats.rounds.mean, 15.0);
  EXPECT_EQ(stats.plurality_wins, 2u);
}

TEST(TrialRecordJson, RoundTripIsBitExact) {
  TrialRecord record;
  record.point_index = 5;
  record.replication = 2;
  record.seed = 0xffffffffffffff01ULL;  // above int64 range: string-encoded
  record.result = make_result(1234);
  const TrialRecord reparsed =
      record_from_json(support::Json::parse(record_to_json(record).dump()));
  EXPECT_EQ(reparsed.point_index, record.point_index);
  EXPECT_EQ(reparsed.replication, record.replication);
  EXPECT_EQ(reparsed.seed, record.seed);
  EXPECT_EQ(reparsed.result.reached_consensus,
            record.result.reached_consensus);
  EXPECT_EQ(reparsed.result.rounds, record.result.rounds);
  EXPECT_EQ(reparsed.result.winner, record.result.winner);
  EXPECT_EQ(reparsed.result.validity, record.result.validity);
  EXPECT_EQ(reparsed.result.plurality_preserved,
            record.result.plurality_preserved);
  // Bit-exact doubles (resume correctness depends on it).
  EXPECT_EQ(reparsed.result.initial_gamma, record.result.initial_gamma);
  EXPECT_EQ(reparsed.result.initial_margin, record.result.initial_margin);
  EXPECT_EQ(reparsed.result.initial_support, record.result.initial_support);
}

TEST(PointStatsSink, AggregationIsCompletionOrderIndependent) {
  auto record = [](std::size_t point, std::size_t rep, std::uint64_t rounds) {
    TrialRecord r;
    r.point_index = point;
    r.replication = rep;
    r.result = make_result(rounds);
    return r;
  };
  PointStatsSink forward(2, 2);
  for (const auto& r : {record(0, 0, 10), record(0, 1, 30),
                        record(1, 0, 5), record(1, 1, 7)}) {
    forward.on_trial(r);
  }
  forward.on_finish();

  PointStatsSink scrambled(2, 2);
  for (const auto& r : {record(1, 1, 7), record(0, 1, 30),
                        record(1, 0, 5), record(0, 0, 10)}) {
    scrambled.on_trial(r);
  }
  scrambled.on_finish();

  ASSERT_EQ(forward.stats().size(), 2u);
  for (std::size_t p = 0; p < 2; ++p) {
    EXPECT_DOUBLE_EQ(forward.stats()[p].rounds.mean,
                     scrambled.stats()[p].rounds.mean);
    EXPECT_EQ(forward.stats()[p].consensus_reached,
              scrambled.stats()[p].consensus_reached);
  }
  EXPECT_DOUBLE_EQ(forward.stats()[0].rounds.mean, 20.0);
}

TEST(PointStatsSink, RejectsOutOfGridTrials) {
  PointStatsSink sink(2, 2);
  TrialRecord record;
  record.point_index = 2;  // grid has points 0..1
  EXPECT_THROW(sink.on_trial(record), std::invalid_argument);
}

class SinkFileTest : public ::testing::Test {
 protected:
  /// Per-(test, process) file — see testing::unique_temp_path.
  std::string path_ = consensus::testing::unique_temp_path(".jsonl");
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(SinkFileTest, JsonlManifestRoundTripsThroughSweepResume) {
  {
    JsonlSink sink(path_);
    TrialRecord a;
    a.point_index = 0;
    a.replication = 1;
    a.seed = 111;
    a.result = make_result(42);
    TrialRecord replayed_marker = a;
    replayed_marker.replication = 0;
    replayed_marker.replayed = true;  // must NOT be re-appended
    sink.on_trial(replayed_marker);
    sink.on_trial(a);
  }
  const SweepResume resume = SweepResume::from_jsonl(path_);
  EXPECT_EQ(resume.completed.size(), 1u);
  const TrialRecord* found = resume.find(0, 1);
  ASSERT_NE(found, nullptr);
  EXPECT_TRUE(found->replayed);
  EXPECT_EQ(found->seed, 111u);
  EXPECT_EQ(found->result.rounds, 42u);
  EXPECT_EQ(resume.find(0, 0), nullptr);
}

TEST_F(SinkFileTest, AppendRepairsTornTailBeforeWriting) {
  {
    JsonlSink sink(path_);
    TrialRecord a;
    a.seed = 1;
    a.result = make_result(5);
    sink.on_trial(a);
  }
  {
    std::ofstream out(path_, std::ios::app);
    out << "{\"point\":0,\"replication\":1,\"se";  // torn tail from a kill
  }
  {
    JsonlSink sink(path_, /*append=*/true);  // must truncate the torn line
    TrialRecord b;
    b.point_index = 0;
    b.replication = 1;
    b.seed = 2;
    b.result = make_result(6);
    sink.on_trial(b);
  }
  const SweepResume resume = SweepResume::from_jsonl(path_);
  EXPECT_EQ(resume.completed.size(), 2u);
  ASSERT_NE(resume.find(0, 1), nullptr);
  EXPECT_EQ(resume.find(0, 1)->result.rounds, 6u);
}

TEST_F(SinkFileTest, TornManifestTailIsSkipped) {
  {
    JsonlSink sink(path_);
    TrialRecord a;
    a.seed = 9;
    a.result = make_result(7);
    sink.on_trial(a);
  }
  {
    std::ofstream out(path_, std::ios::app);
    out << "{\"point\":1,\"replication\":0,\"se";  // kill mid-write
  }
  const SweepResume resume = SweepResume::from_jsonl(path_);
  EXPECT_EQ(resume.completed.size(), 1u);
  EXPECT_NE(resume.find(0, 0), nullptr);
}

TEST_F(SinkFileTest, MissingManifestMeansFreshStart) {
  const SweepResume resume = SweepResume::from_jsonl("/no/such/manifest");
  EXPECT_TRUE(resume.completed.empty());
}

TEST_F(SinkFileTest, WritePointStatsCsvShape) {
  std::vector<core::RunResult> results{make_result(10), make_result(20)};
  const std::vector<PointStats> stats{
      aggregate_point(0, {results.data(), results.size()}),
      aggregate_point(1, {})};
  write_point_stats_csv(path_, {"a", "b"}, stats);
  const support::CsvTable table = support::read_csv(path_);
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[0][table.column_index("label")], "a");
  EXPECT_DOUBLE_EQ(table.number(0, "mean_rounds"), 15.0);
  EXPECT_DOUBLE_EQ(table.number(1, "success_rate"), 0.0);
  EXPECT_THROW(write_point_stats_csv(path_, {"a"}, stats),
               std::invalid_argument);
}

}  // namespace
}  // namespace consensus::exp
