// NOTE: this translation unit is compiled with -ffp-contract=off (see
// CMakeLists.txt): the scalar mirrors spell out mul-then-add chains that a
// contracting compiler could fuse into FMA on targets that have it
// (aarch64), which would silently break the lane-vs-mirror bit-identity
// contract. The vector lanes use explicit non-fused intrinsics for the
// same reason.
#include "consensus/support/simd_kernels.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "consensus/support/metrics.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CONSENSUS_SIMD_X86 1
#include <immintrin.h>
#else
#define CONSENSUS_SIMD_X86 0
#endif

#if defined(__aarch64__) && (defined(__GNUC__) || defined(__clang__))
#define CONSENSUS_SIMD_NEON 1
#include <arm_neon.h>
#else
#define CONSENSUS_SIMD_NEON 0
#endif

namespace consensus::support {

namespace {

/// Shared tie pass: count the argmax entries, then spread p uniformly over
/// them. Exact in any order (integer compares; one rounded divide shared
/// by every tied slot), so it is not part of the lane contract.
inline void spread_over_argmax(const std::uint32_t* hist, std::size_t a,
                               std::uint32_t best, double p, double* acc) {
  std::uint32_t ties = 0;
  for (std::size_t i = 0; i < a; ++i) ties += hist[i] == best;
  const double share = p / static_cast<double>(ties);
  for (std::size_t i = 0; i < a; ++i) {
    if (hist[i] == best) acc[i] += share;
  }
}

#if CONSENSUS_SIMD_X86
__attribute__((target("avx2")))
void accumulate_histogram_term_avx2(const double* w, std::size_t stride,
                                    const std::uint32_t* hist, std::size_t a,
                                    double prefactor, double* acc) {
  // This path reads `hist` with 128-bit loads (three passes). A vector
  // load over bytes that were scalar-written moments ago cannot
  // store-forward and stalls ~15 cycles — callers integrating straight
  // off a freshly-mutated scratch (the colex advance) should stage rows
  // a few iterations deep first, as h_majority's ring-staged enumeration
  // does; by integration time those stores have retired and the loads
  // below are stall-free.
  __m256d lanes = _mm256_set1_pd(1.0);
  __m128i max4 = _mm_setzero_si128();
  const std::int32_t s = static_cast<std::int32_t>(stride);
  __m128i base = _mm_set_epi32(3 * s, 2 * s, s, 0);
  const __m128i step = _mm_set1_epi32(4 * s);
  // All-lanes-on masked gather: the plain _mm256_i32gather_pd wrapper
  // feeds the builtin an uninitialized pass-through operand (GCC warns).
  const __m256d all = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  const std::size_t a4 = a & ~std::size_t{3};
  for (std::size_t i = 0; i < a4; i += 4) {
    const __m128i h4 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(hist + i));
    const __m128i idx = _mm_add_epi32(base, h4);
    lanes = _mm256_mul_pd(
        lanes,
        _mm256_mask_i32gather_pd(_mm256_setzero_pd(), w, idx, all, 8));
    max4 = _mm_max_epu32(max4, h4);
    base = _mm_add_epi32(base, step);
  }
  // Combine exactly as the scalar mirror: (l0·l1)·(l2·l3), then the tail.
  alignas(32) double l[4];
  _mm256_storeu_pd(l, lanes);
  double p = prefactor * ((l[0] * l[1]) * (l[2] * l[3]));
  alignas(16) std::uint32_t m[4];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(m), max4);
  std::uint32_t best = m[0] > m[1] ? m[0] : m[1];
  if (m[2] > best) best = m[2];
  if (m[3] > best) best = m[3];
  for (std::size_t i = a4; i < a; ++i) {
    p *= w[i * stride + hist[i]];
    if (hist[i] > best) best = hist[i];
  }

  // Vectorised tie passes. The masked accumulate adds share where
  // hist == best and EXACTLY +0.0 elsewhere; acc entries are never −0.0
  // (they start at +0.0 and only accumulate non-negative mass), so the
  // unconditional add is bit-identical to the scalar conditional one.
  const __m128i bestv = _mm_set1_epi32(static_cast<std::int32_t>(best));
  std::uint32_t ties = 0;
  for (std::size_t i = 0; i < a4; i += 4) {
    const __m128i eq = _mm_cmpeq_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(hist + i)), bestv);
    ties += static_cast<std::uint32_t>(
        __builtin_popcount(_mm_movemask_ps(_mm_castsi128_ps(eq))));
  }
  for (std::size_t i = a4; i < a; ++i) ties += hist[i] == best;
  const double share = p / static_cast<double>(ties);
  const __m256d sharev = _mm256_set1_pd(share);
  for (std::size_t i = 0; i < a4; i += 4) {
    const __m128i eq = _mm_cmpeq_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(hist + i)), bestv);
    const __m256d mask = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(eq));
    const __m256d add = _mm256_and_pd(sharev, mask);
    _mm256_storeu_pd(acc + i,
                     _mm256_add_pd(_mm256_loadu_pd(acc + i), add));
  }
  for (std::size_t i = a4; i < a; ++i) {
    if (hist[i] == best) acc[i] += share;
  }
}

/// Correctly-rounded uint64 → double for 4 lanes (the 2⁸⁴/2⁵² split: the
/// high halves ride a 2⁸⁴-biased exponent, the low halves a 2⁵²-biased
/// one; subtracting the combined bias is exact, and the single final add
/// performs the one rounding static_cast<double> would).
__attribute__((target("avx2")))
inline __m256d u64_to_pd_avx2(__m256i x) {
  const __m256d two84 = _mm256_set1_pd(19342813113834066795298816.);  // 2^84
  const __m256d two52 = _mm256_set1_pd(4503599627370496.);            // 2^52
  const __m256d both = _mm256_set1_pd(19342813118337666422669312.);   // 2^84+2^52
  __m256i xh = _mm256_srli_epi64(x, 32);
  xh = _mm256_or_si256(xh, _mm256_castpd_si256(two84));
  const __m256i xl =
      _mm256_blend_epi16(x, _mm256_castpd_si256(two52), 0xcc);
  const __m256d f = _mm256_sub_pd(_mm256_castsi256_pd(xh), both);
  return _mm256_add_pd(f, _mm256_castsi256_pd(xl));
}

__attribute__((target("avx2")))
void mixture_accumulate_avx2(double* q, const std::uint64_t* counts,
                             std::size_t k, double coeff) {
  const __m256d c = _mm256_set1_pd(coeff);
  const std::size_t k4 = k & ~std::size_t{3};
  for (std::size_t j = 0; j < k4; j += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(counts + j));
    const __m256d term = _mm256_mul_pd(c, u64_to_pd_avx2(x));
    _mm256_storeu_pd(q + j, _mm256_add_pd(_mm256_loadu_pd(q + j), term));
  }
  for (std::size_t j = k4; j < k; ++j) {
    const double term = coeff * static_cast<double>(counts[j]);
    q[j] += term;
  }
}

__attribute__((target("avx2")))
double mixture_sum_squares_avx2(const double* q, std::size_t k) {
  __m256d acc = _mm256_setzero_pd();
  const std::size_t k4 = k & ~std::size_t{3};
  for (std::size_t j = 0; j < k4; j += 4) {
    const __m256d v = _mm256_loadu_pd(q + j);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(v, v));
  }
  alignas(32) double l[4];
  _mm256_storeu_pd(l, acc);
  double s = (l[0] + l[1]) + (l[2] + l[3]);
  for (std::size_t j = k4; j < k; ++j) s += q[j] * q[j];
  return s;
}

__attribute__((target("avx2")))
void mixture_majority_map_avx2(const double* q, std::size_t k, double gamma,
                               double* out) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d g = _mm256_set1_pd(gamma);
  const std::size_t k4 = k & ~std::size_t{3};
  for (std::size_t j = 0; j < k4; j += 4) {
    const __m256d v = _mm256_loadu_pd(q + j);
    const __m256d r = _mm256_mul_pd(v, _mm256_sub_pd(_mm256_add_pd(one, v), g));
    _mm256_storeu_pd(out + j, r);
  }
  for (std::size_t j = k4; j < k; ++j) out[j] = q[j] * ((1.0 + q[j]) - gamma);
}

// AVX-512 lanes for the elementwise mixture kernels (the histogram and
// sum-squares kernels keep the AVX2 bodies: their 4-lane reduction
// contract leaves nothing for 8-wide registers to win). avx512dq provides
// the correctly-rounded _mm512_cvtepu64_pd.
__attribute__((target("avx512f,avx512dq")))
void mixture_accumulate_avx512(double* q, const std::uint64_t* counts,
                               std::size_t k, double coeff) {
  const __m512d c = _mm512_set1_pd(coeff);
  const std::size_t k8 = k & ~std::size_t{7};
  for (std::size_t j = 0; j < k8; j += 8) {
    const __m512i x = _mm512_loadu_si512(counts + j);
    const __m512d term = _mm512_mul_pd(c, _mm512_cvtepu64_pd(x));
    _mm512_storeu_pd(q + j, _mm512_add_pd(_mm512_loadu_pd(q + j), term));
  }
  if (k8 < k) {
    const __mmask8 m =
        static_cast<__mmask8>((1u << (k - k8)) - 1u);
    const __m512i x = _mm512_maskz_loadu_epi64(m, counts + k8);
    const __m512d term = _mm512_mul_pd(c, _mm512_cvtepu64_pd(x));
    const __m512d cur = _mm512_maskz_loadu_pd(m, q + k8);
    _mm512_mask_storeu_pd(q + k8, m, _mm512_add_pd(cur, term));
  }
}

__attribute__((target("avx512f,avx512dq")))
void mixture_majority_map_avx512(const double* q, std::size_t k,
                                 double gamma, double* out) {
  const __m512d one = _mm512_set1_pd(1.0);
  const __m512d g = _mm512_set1_pd(gamma);
  const std::size_t k8 = k & ~std::size_t{7};
  for (std::size_t j = 0; j < k8; j += 8) {
    const __m512d v = _mm512_loadu_pd(q + j);
    const __m512d r = _mm512_mul_pd(v, _mm512_sub_pd(_mm512_add_pd(one, v), g));
    _mm512_storeu_pd(out + j, r);
  }
  if (k8 < k) {
    const __mmask8 m =
        static_cast<__mmask8>((1u << (k - k8)) - 1u);
    const __m512d v = _mm512_maskz_loadu_pd(m, q + k8);
    const __m512d r = _mm512_mul_pd(v, _mm512_sub_pd(_mm512_add_pd(one, v), g));
    _mm512_mask_storeu_pd(out + k8, m, r);
  }
}
#endif  // CONSENSUS_SIMD_X86

#if CONSENSUS_SIMD_NEON
// NEON lanes (2-wide doubles). The sum-squares kernel keeps the 4-lane
// contract with two accumulator registers — register a01 holds logical
// lanes 0/1, a23 lanes 2/3 — so each lane's add sequence matches the
// mirror exactly. vcvtq_f64_u64 (ucvtf) is correctly rounded. The
// histogram kernel stays on the scalar mirror: its gathers are scalar
// loads either way, so NEON has nothing to vectorise.
void mixture_accumulate_neon(double* q, const std::uint64_t* counts,
                             std::size_t k, double coeff) {
  const float64x2_t c = vdupq_n_f64(coeff);
  const std::size_t k2 = k & ~std::size_t{1};
  for (std::size_t j = 0; j < k2; j += 2) {
    const uint64x2_t x = vld1q_u64(counts + j);
    const float64x2_t term = vmulq_f64(c, vcvtq_f64_u64(x));
    vst1q_f64(q + j, vaddq_f64(vld1q_f64(q + j), term));
  }
  if (k2 < k) {
    const double term = coeff * static_cast<double>(counts[k2]);
    q[k2] += term;
  }
}

double mixture_sum_squares_neon(const double* q, std::size_t k) {
  float64x2_t a01 = vdupq_n_f64(0.0);
  float64x2_t a23 = vdupq_n_f64(0.0);
  const std::size_t k4 = k & ~std::size_t{3};
  for (std::size_t j = 0; j < k4; j += 4) {
    const float64x2_t v01 = vld1q_f64(q + j);
    const float64x2_t v23 = vld1q_f64(q + j + 2);
    a01 = vaddq_f64(a01, vmulq_f64(v01, v01));
    a23 = vaddq_f64(a23, vmulq_f64(v23, v23));
  }
  double s = (vgetq_lane_f64(a01, 0) + vgetq_lane_f64(a01, 1)) +
             (vgetq_lane_f64(a23, 0) + vgetq_lane_f64(a23, 1));
  for (std::size_t j = k4; j < k; ++j) s += q[j] * q[j];
  return s;
}

void mixture_majority_map_neon(const double* q, std::size_t k, double gamma,
                               double* out) {
  const float64x2_t one = vdupq_n_f64(1.0);
  const float64x2_t g = vdupq_n_f64(gamma);
  const std::size_t k2 = k & ~std::size_t{1};
  for (std::size_t j = 0; j < k2; j += 2) {
    const float64x2_t v = vld1q_f64(q + j);
    const float64x2_t r = vmulq_f64(v, vsubq_f64(vaddq_f64(one, v), g));
    vst1q_f64(out + j, r);
  }
  if (k2 < k) out[k2] = q[k2] * ((1.0 + q[k2]) - gamma);
}
#endif  // CONSENSUS_SIMD_NEON

/// One function pointer per kernel — the unit the registry dispatches.
struct KernelTable {
  void (*histogram_term)(const double*, std::size_t, const std::uint32_t*,
                         std::size_t, double, double*);
  void (*mixture_accumulate)(double*, const std::uint64_t*, std::size_t,
                             double);
  double (*mixture_sum_squares)(const double*, std::size_t);
  void (*mixture_majority_map)(const double*, std::size_t, double, double*);
};

constexpr KernelTable kScalarTable{
    &accumulate_histogram_term_scalar,
    &mixture_accumulate_scalar,
    &mixture_sum_squares_scalar,
    &mixture_majority_map_scalar,
};

#if CONSENSUS_SIMD_X86
constexpr KernelTable kAvx2Table{
    &accumulate_histogram_term_avx2,
    &mixture_accumulate_avx2,
    &mixture_sum_squares_avx2,
    &mixture_majority_map_avx2,
};
// The avx512 table reuses the AVX2 bodies where the 4-lane determinism
// contract pins the reduction shape (histogram products, sum of squares);
// only the elementwise kernels widen to 8 lanes.
constexpr KernelTable kAvx512Table{
    &accumulate_histogram_term_avx2,
    &mixture_accumulate_avx512,
    &mixture_sum_squares_avx2,
    &mixture_majority_map_avx512,
};
#endif

#if CONSENSUS_SIMD_NEON
constexpr KernelTable kNeonTable{
    &accumulate_histogram_term_scalar,
    &mixture_accumulate_neon,
    &mixture_sum_squares_neon,
    &mixture_majority_map_neon,
};
#endif

const KernelTable* table_for(SimdIsa isa) noexcept {
  switch (isa) {
#if CONSENSUS_SIMD_X86
    case SimdIsa::kAvx2:
      return &kAvx2Table;
    case SimdIsa::kAvx512:
      return &kAvx512Table;
#endif
#if CONSENSUS_SIMD_NEON
    case SimdIsa::kNeon:
      return &kNeonTable;
#endif
    default:
      return &kScalarTable;
  }
}

constexpr std::uint8_t kAutoSentinel = 0xff;

struct Registry {
  bool supported[kNumSimdIsas] = {true, false, false, false};
  SimdIsa best = SimdIsa::kScalar;
  std::atomic<std::uint8_t> forced{kAutoSentinel};  // kAutoSentinel = auto
  std::atomic<bool> enabled{true};
  std::atomic<const KernelTable*> active{&kScalarTable};
  std::atomic<std::uint64_t> dispatches[kNumSimdKernels] = {};

  Registry() {
#if CONSENSUS_SIMD_X86
    if (__builtin_cpu_supports("avx2")) {
      supported[static_cast<std::size_t>(SimdIsa::kAvx2)] = true;
      best = SimdIsa::kAvx2;
      if (__builtin_cpu_supports("avx512f") &&
          __builtin_cpu_supports("avx512dq")) {
        supported[static_cast<std::size_t>(SimdIsa::kAvx512)] = true;
        best = SimdIsa::kAvx512;
      }
    }
#endif
#if CONSENSUS_SIMD_NEON
    // Advanced SIMD is architecturally mandatory on AArch64.
    supported[static_cast<std::size_t>(SimdIsa::kNeon)] = true;
    best = SimdIsa::kNeon;
#endif
    if (const char* env = std::getenv("CONSENSUS_SIMD");
        env != nullptr && *env != '\0') {
      if (!apply(env)) {
        std::fprintf(stderr,
                     "consensus: CONSENSUS_SIMD=%s is not a lane this "
                     "build/CPU can run; using auto (%s)\n",
                     env, std::string(to_string(best)).c_str());
      }
    }
    refresh();
  }

  SimdIsa active_isa() const noexcept {
    if (!enabled.load(std::memory_order_relaxed)) return SimdIsa::kScalar;
    const std::uint8_t f = forced.load(std::memory_order_relaxed);
    return f == kAutoSentinel ? best : static_cast<SimdIsa>(f);
  }

  void refresh() noexcept {
    active.store(table_for(active_isa()), std::memory_order_relaxed);
  }

  bool apply(std::string_view name) noexcept {
    if (name == "off") {
      enabled.store(false, std::memory_order_relaxed);
      refresh();
      return true;
    }
    if (name == "auto") {
      forced.store(kAutoSentinel, std::memory_order_relaxed);
      enabled.store(true, std::memory_order_relaxed);
      refresh();
      return true;
    }
    SimdIsa isa;
    if (name == "scalar") {
      isa = SimdIsa::kScalar;
    } else if (name == "avx2") {
      isa = SimdIsa::kAvx2;
    } else if (name == "avx512") {
      isa = SimdIsa::kAvx512;
    } else if (name == "neon") {
      isa = SimdIsa::kNeon;
    } else {
      return false;
    }
    if (!supported[static_cast<std::size_t>(isa)]) return false;
    forced.store(static_cast<std::uint8_t>(isa), std::memory_order_relaxed);
    enabled.store(true, std::memory_order_relaxed);
    refresh();
    return true;
  }
};

Registry& registry() {
  static Registry r;  // magic static: detection + env parse happen once
  return r;
}

}  // namespace

std::string_view to_string(SimdIsa isa) noexcept {
  switch (isa) {
    case SimdIsa::kScalar:
      return "scalar";
    case SimdIsa::kAvx2:
      return "avx2";
    case SimdIsa::kAvx512:
      return "avx512";
    case SimdIsa::kNeon:
      return "neon";
  }
  return "scalar";
}

std::string_view to_string(SimdKernel kernel) noexcept {
  switch (kernel) {
    case SimdKernel::kHistogramTerm:
      return "histogram_term";
    case SimdKernel::kMixtureAccumulate:
      return "mixture_accumulate";
    case SimdKernel::kMixtureSumSquares:
      return "mixture_sum_squares";
    case SimdKernel::kMixtureMajorityMap:
      return "mixture_majority_map";
  }
  return "histogram_term";
}

void init_simd_kernels() { registry(); }

void set_simd_kernels_enabled(bool enabled) noexcept {
  Registry& r = registry();
  r.enabled.store(enabled, std::memory_order_relaxed);
  r.refresh();
}

bool simd_kernels_enabled() noexcept {
  return registry().enabled.load(std::memory_order_relaxed);
}

bool simd_kernels_available() noexcept {
  return registry().best != SimdIsa::kScalar;
}

bool simd_isa_supported(SimdIsa isa) noexcept {
  return registry().supported[static_cast<std::size_t>(isa)];
}

SimdIsa best_simd_isa() noexcept { return registry().best; }

SimdIsa active_simd_isa() noexcept { return registry().active_isa(); }

bool set_simd_isa(std::string_view name) { return registry().apply(name); }

void note_simd_dispatch(SimdKernel kernel, std::uint64_t n) noexcept {
  registry().dispatches[static_cast<std::size_t>(kernel)].fetch_add(
      n, std::memory_order_relaxed);
}

std::uint64_t simd_dispatch_count(SimdKernel kernel) noexcept {
  return registry().dispatches[static_cast<std::size_t>(kernel)].load(
      std::memory_order_relaxed);
}

void export_simd_metrics(Metrics& metrics) {
  Registry& r = registry();
  metrics.set_info("simd_isa", std::string(to_string(r.active_isa())));
  metrics.set_gauge("simd_kernels_enabled",
                    r.enabled.load(std::memory_order_relaxed) ? 1.0 : 0.0);
  for (std::size_t i = 0; i < kNumSimdKernels; ++i) {
    metrics.set_counter(
        "simd_dispatch_" +
            std::string(to_string(static_cast<SimdKernel>(i))),
        r.dispatches[i].load(std::memory_order_relaxed));
  }
}

void build_pow_weight_table(std::span<const double> alpha, unsigned h,
                            std::span<const double> inv_fact,
                            std::vector<double>& w) {
  const std::size_t stride = static_cast<std::size_t>(h) + 1;
  w.resize(alpha.size() * stride);
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    double* row = w.data() + i * stride;
    double pw = 1.0;
    row[0] = inv_fact[0];  // alpha^0 / 0! = 1
    for (unsigned j = 1; j <= h; ++j) {
      pw *= alpha[i];
      row[j] = pw * inv_fact[j];
    }
  }
}

void accumulate_histogram_term_scalar(const double* w, std::size_t stride,
                                      const std::uint32_t* hist,
                                      std::size_t a, double prefactor,
                                      double* acc) {
  // Mirrors the vector lane layout element for element: lane l accumulates
  // elements l, l+4, …; lanes combine as (l0·l1)·(l2·l3); the tail then
  // multiplies in sequentially. Bit-identical by construction.
  double l0 = 1.0, l1 = 1.0, l2 = 1.0, l3 = 1.0;
  std::uint32_t best = 0;
  const std::size_t a4 = a & ~std::size_t{3};
  for (std::size_t i = 0; i < a4; i += 4) {
    l0 *= w[i * stride + hist[i]];
    l1 *= w[(i + 1) * stride + hist[i + 1]];
    l2 *= w[(i + 2) * stride + hist[i + 2]];
    l3 *= w[(i + 3) * stride + hist[i + 3]];
    std::uint32_t m01 = hist[i] > hist[i + 1] ? hist[i] : hist[i + 1];
    std::uint32_t m23 = hist[i + 2] > hist[i + 3] ? hist[i + 2] : hist[i + 3];
    const std::uint32_t m = m01 > m23 ? m01 : m23;
    if (m > best) best = m;
  }
  double p = prefactor * ((l0 * l1) * (l2 * l3));
  for (std::size_t i = a4; i < a; ++i) {
    p *= w[i * stride + hist[i]];
    if (hist[i] > best) best = hist[i];
  }
  spread_over_argmax(hist, a, best, p, acc);
}

void accumulate_histogram_term(const double* w, std::size_t stride,
                               const std::uint32_t* hist, std::size_t a,
                               double prefactor, double* acc) {
  // No dispatch counter here: this runs once per histogram (billions per
  // law at large h); h_majority.cpp notes one dispatch per law instead.
  registry().active.load(std::memory_order_relaxed)->histogram_term(
      w, stride, hist, a, prefactor, acc);
}

void mixture_accumulate_scalar(double* q, const std::uint64_t* counts,
                               std::size_t k, double coeff) {
  for (std::size_t j = 0; j < k; ++j) {
    const double term = coeff * static_cast<double>(counts[j]);
    q[j] += term;
  }
}

void mixture_accumulate(double* q, const std::uint64_t* counts,
                        std::size_t k, double coeff) {
  Registry& r = registry();
  r.dispatches[static_cast<std::size_t>(SimdKernel::kMixtureAccumulate)]
      .fetch_add(1, std::memory_order_relaxed);
  r.active.load(std::memory_order_relaxed)->mixture_accumulate(q, counts, k,
                                                               coeff);
}

double mixture_sum_squares_scalar(const double* q, std::size_t k) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  const std::size_t k4 = k & ~std::size_t{3};
  for (std::size_t j = 0; j < k4; j += 4) {
    l0 += q[j] * q[j];
    l1 += q[j + 1] * q[j + 1];
    l2 += q[j + 2] * q[j + 2];
    l3 += q[j + 3] * q[j + 3];
  }
  double s = (l0 + l1) + (l2 + l3);
  for (std::size_t j = k4; j < k; ++j) s += q[j] * q[j];
  return s;
}

double mixture_sum_squares(const double* q, std::size_t k) {
  Registry& r = registry();
  r.dispatches[static_cast<std::size_t>(SimdKernel::kMixtureSumSquares)]
      .fetch_add(1, std::memory_order_relaxed);
  return r.active.load(std::memory_order_relaxed)->mixture_sum_squares(q, k);
}

void mixture_majority_map_scalar(const double* q, std::size_t k,
                                 double gamma, double* out) {
  for (std::size_t j = 0; j < k; ++j) out[j] = q[j] * ((1.0 + q[j]) - gamma);
}

void mixture_majority_map(const double* q, std::size_t k, double gamma,
                          double* out) {
  Registry& r = registry();
  r.dispatches[static_cast<std::size_t>(SimdKernel::kMixtureMajorityMap)]
      .fetch_add(1, std::memory_order_relaxed);
  r.active.load(std::memory_order_relaxed)->mixture_majority_map(q, k, gamma,
                                                                 out);
}

}  // namespace consensus::support
