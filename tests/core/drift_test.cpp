// Monte-Carlo validation of Lemma 4.1 (Table 1): one-step expectations are
// exact identities, variance formulas are upper bounds, and γ has the
// claimed additive submartingale drift.
#include <gtest/gtest.h>

#include <cmath>

#include "consensus/core/counting_engine.hpp"
#include "consensus/core/init.hpp"
#include "consensus/core/theory.hpp"
#include "consensus/support/stats.hpp"
#include "test_util.hpp"

namespace consensus::core {
namespace {

using theory::Dynamics;

struct DriftCase {
  const char* protocol;
  Dynamics dynamics;
  std::vector<std::uint64_t> counts;
};

class DriftLemma41 : public ::testing::TestWithParam<DriftCase> {
 protected:
  static constexpr int kTrials = 30000;
};

TEST_P(DriftLemma41, AlphaExpectationIdentity) {
  const auto& param = GetParam();
  const auto protocol = make_protocol(param.protocol);
  const Configuration start(param.counts);
  const double gamma = start.gamma();
  support::Rng rng(0xa1fa);
  support::Welford w;
  for (int t = 0; t < kTrials; ++t) {
    CountingEngine engine(*protocol, start);
    engine.step(rng);
    w.add(engine.config().alpha(0));
  }
  const double expected = theory::expected_alpha_next(start.alpha(0), gamma);
  EXPECT_TRUE(testing::mean_close(w, expected))
      << param.protocol << ": " << w.mean() << " vs " << expected;
}

TEST_P(DriftLemma41, AlphaVarianceBound) {
  const auto& param = GetParam();
  const auto protocol = make_protocol(param.protocol);
  const Configuration start(param.counts);
  support::Rng rng(0x7a7);
  support::Welford w;
  for (int t = 0; t < kTrials; ++t) {
    CountingEngine engine(*protocol, start);
    engine.step(rng);
    w.add(engine.config().alpha(0));
  }
  const double bound = theory::var_alpha_bound(
      param.dynamics, start.alpha(0), start.gamma(), start.num_vertices());
  // Allow 10% Monte-Carlo slack above the bound.
  EXPECT_LE(w.variance(), bound * 1.10)
      << param.protocol << ": var " << w.variance() << " bound " << bound;
}

TEST_P(DriftLemma41, BiasExpectationIdentity) {
  const auto& param = GetParam();
  const auto protocol = make_protocol(param.protocol);
  const Configuration start(param.counts);
  const double gamma = start.gamma();
  support::Rng rng(0xb1a5);
  support::Welford w;
  for (int t = 0; t < kTrials; ++t) {
    CountingEngine engine(*protocol, start);
    engine.step(rng);
    w.add(engine.config().bias(0, 1));
  }
  const double expected =
      theory::expected_bias_next(start.alpha(0), start.alpha(1), gamma);
  EXPECT_TRUE(testing::mean_close(w, expected))
      << param.protocol << ": " << w.mean() << " vs " << expected;
}

TEST_P(DriftLemma41, BiasVarianceBound) {
  const auto& param = GetParam();
  const auto protocol = make_protocol(param.protocol);
  const Configuration start(param.counts);
  support::Rng rng(0xb1a6);
  support::Welford w;
  for (int t = 0; t < kTrials; ++t) {
    CountingEngine engine(*protocol, start);
    engine.step(rng);
    w.add(engine.config().bias(0, 1));
  }
  const double bound =
      theory::var_bias_bound(param.dynamics, start.alpha(0), start.alpha(1),
                             start.gamma(), start.num_vertices());
  EXPECT_LE(w.variance(), bound * 1.10)
      << param.protocol << ": var " << w.variance() << " bound " << bound;
}

TEST_P(DriftLemma41, GammaSubmartingaleWithAdditiveDrift) {
  const auto& param = GetParam();
  const auto protocol = make_protocol(param.protocol);
  const Configuration start(param.counts);
  const double gamma0 = start.gamma();
  support::Rng rng(0x9a33a);
  support::Welford w;
  for (int t = 0; t < kTrials; ++t) {
    CountingEngine engine(*protocol, start);
    engine.step(rng);
    w.add(engine.config().gamma());
  }
  const double drift = theory::gamma_drift_lower_bound(
      param.dynamics, gamma0, start.num_vertices());
  // E[γ'] ≥ γ + drift; statistical slack of 5 SEM on the low side.
  EXPECT_GE(w.mean() + 5.0 * w.sem(), gamma0 + drift)
      << param.protocol << ": E[γ']=" << w.mean() << " γ+drift="
      << gamma0 + drift;
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, DriftLemma41,
    ::testing::Values(
        DriftCase{"3-majority", Dynamics::kThreeMajority, {500, 300, 200}},
        DriftCase{"3-majority", Dynamics::kThreeMajority,
                  {250, 250, 250, 250}},
        DriftCase{"3-majority", Dynamics::kThreeMajority, {700, 200, 50, 50}},
        DriftCase{"2-choices", Dynamics::kTwoChoices, {500, 300, 200}},
        DriftCase{"2-choices", Dynamics::kTwoChoices, {250, 250, 250, 250}},
        DriftCase{"2-choices", Dynamics::kTwoChoices, {700, 200, 50, 50}}));

TEST(DriftExact, ThreeMajorityGammaExpectationFormula) {
  // Exact E[γ'] for 3-Majority: (1−1/n)·Σp² + 1/n (proof of Lemma 4.1(iii)).
  const Configuration start({400, 350, 250});
  const auto protocol = make_protocol("3-majority");
  support::Rng rng(0xe8a);
  support::Welford w;
  for (int t = 0; t < 60000; ++t) {
    CountingEngine engine(*protocol, start);
    engine.step(rng);
    w.add(engine.config().gamma());
  }
  const double expected = theory::expected_gamma_next_three_majority(start);
  EXPECT_TRUE(testing::mean_close(w, expected, 6.0))
      << w.mean() << " vs " << expected;
}

TEST(DriftWeakOpinion, WeakOpinionShrinksInExpectation) {
  // Heuristic behind Lemma 5.2: for weak i, E[α'(i)] ≤ (1 − c·γ)·α(i).
  const Configuration start({50, 600, 350});  // α(0)=0.05 weak (γ≈0.4855)
  ASSERT_TRUE(start.is_weak(0));
  const double expected =
      theory::expected_alpha_next(start.alpha(0), start.gamma());
  EXPECT_LT(expected, start.alpha(0));
}

TEST(DriftStrongBias, BiasGrowsInExpectationForStrongPair) {
  // Eq. (3): for strong i, j the bias has multiplicative drift ≥ 1.
  const Configuration start({400, 300, 100, 100, 100});
  ASSERT_TRUE(start.is_strong(0));
  ASSERT_TRUE(start.is_strong(1));
  const double next =
      theory::expected_bias_next(start.alpha(0), start.alpha(1),
                                 start.gamma());
  EXPECT_GT(next, start.bias(0, 1));
}

}  // namespace
}  // namespace consensus::core
