#include "consensus/core/async_engine.hpp"

#include <stdexcept>

#include "consensus/core/fused.hpp"

namespace consensus::core {

AsyncEngine::AsyncEngine(const Protocol& protocol, Configuration initial)
    : protocol_(&protocol),
      config_(std::move(initial)),
      sampler_(config_.counts()) {}

void AsyncEngine::tick(support::Rng& rng) {
  // Waking a uniformly random vertex == picking its opinion class with
  // probability count/n.
  const auto current = static_cast<Opinion>(sampler_.sample(rng));
  FenwickOpinionSampler neighbors(sampler_, config_.num_opinions());
  // Registered rules run devirtualized (the update body inlines around the
  // Fenwick draws); anything else takes the virtual reference path.
  const FusedOps* ops = protocol_->fused_visitor();
  const Opinion next =
      ops != nullptr ? ops->update_fenwick(*protocol_, current, neighbors, rng)
                     : protocol_->update(current, neighbors, rng);
  if (next != current) {
    config_.move(current, next, 1);
    sampler_.add(current, -1);
    sampler_.add(next, +1);
  }
  ++ticks_;
}

void AsyncEngine::step_round(support::Rng& rng) {
  const std::uint64_t n = config_.num_vertices();
  for (std::uint64_t i = 0; i < n; ++i) tick(rng);
}

EngineState AsyncEngine::capture_state() const {
  EngineState state;
  state.kind = "async";
  state.progress = ticks_;
  state.counts.assign(config_.counts().begin(), config_.counts().end());
  return state;
}

void AsyncEngine::restore_state(const EngineState& state) {
  if (state.kind != "async") {
    throw std::invalid_argument(
        "AsyncEngine::restore_state: state is for engine kind '" +
        state.kind + "'");
  }
  config_.replace_counts(state.counts);
  sampler_ = support::FenwickSampler(config_.counts());
  ticks_ = state.progress;
}

}  // namespace consensus::core
