// Cooperative cancellation for long-running work: a CancelToken is armed
// with an explicit cancel() and/or a wall-clock deadline, and the run loops
// (core::run_to_consensus per round, exp::Sweep per trial) poll `fired()`
// at safe points and unwind cleanly instead of being killed mid-state.
//
// Polling, never exceptions across threads: support::ThreadPool tasks must
// not throw, so sweep workers check the token and *skip* remaining trials;
// the orchestrating thread (outside the pool) converts a fired token into
// a `Cancelled` exception once the pool is quiescent. The reason string is
// part of the contract — "cancelled" for explicit cancels, "deadline" for
// expiry — and the serving daemon forwards it verbatim as the terminal
// status of a job's NDJSON stream.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace consensus::support {

/// Thrown (by the caller's orchestration layer, not by pool tasks) when a
/// run was abandoned because its CancelToken fired. `reason()` is
/// "cancelled" or "deadline".
class Cancelled : public std::runtime_error {
 public:
  explicit Cancelled(std::string reason)
      : std::runtime_error("run " + reason), reason_(std::move(reason)) {}

  const std::string& reason() const noexcept { return reason_; }

 private:
  std::string reason_;
};

/// Shared cancellation state. Thread-safe: any thread may cancel() or set
/// the deadline while workers poll fired(). One-way: once fired, a token
/// stays fired (tokens are per-job, not reused).
class CancelToken {
 public:
  CancelToken() = default;

  /// Explicit cancellation (DELETE /jobs/<id>, Ctrl-C handler, ...).
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms an absolute deadline; fired() starts returning true once the
  /// steady clock passes it. At most one deadline per token.
  void set_deadline(std::chrono::steady_clock::time_point deadline) noexcept {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }

  /// Deadline `budget` from now — the serving daemon's ?timeout_s=
  /// execution budget, armed when the job starts running (queue wait does
  /// not consume it).
  void set_deadline_after(std::chrono::nanoseconds budget) {
    set_deadline(std::chrono::steady_clock::now() + budget);
  }

  /// True once cancel() was called or the deadline passed. Cheap enough
  /// for per-round polling: one relaxed load, plus a clock read only when
  /// a deadline is armed.
  bool fired() const noexcept {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    const std::int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    if (deadline == kNoDeadline) return false;
    return std::chrono::steady_clock::now().time_since_epoch().count() >=
           deadline;
  }

  /// Why the token fired: "cancelled" (explicit cancel wins over a passed
  /// deadline), "deadline", or "" when not fired.
  std::string reason() const {
    if (cancelled_.load(std::memory_order_relaxed)) return "cancelled";
    return fired() ? "deadline" : "";
  }

  /// Throws Cancelled with the token's reason when fired. Call only from
  /// code that is allowed to throw (NOT from ThreadPool tasks).
  void throw_if_fired() const {
    if (fired()) throw Cancelled(reason());
  }

 private:
  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::max();

  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{kNoDeadline};
};

}  // namespace consensus::support
