#include "consensus/graph/degree_histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace consensus::graph {

namespace {

// ~4 buckets per octave of degree: 2^(1/4). Small degrees get unit buckets
// (the geometric step rounds below lo+1), so the head of the distribution —
// where the mixing weights differ the most — is represented exactly.
constexpr double kBucketRatio = 1.1892071150027210667;

// Degrees are bounded so a hostile power-law spec cannot demand an O(d_max)
// bucketing loop of unbounded size (specs arrive over the wire).
constexpr std::uint64_t kMaxPowerLawDegree = std::uint64_t{1} << 20;

[[noreturn]] void histogram_error(const std::string& what) {
  throw std::invalid_argument("DegreeHistogram: " + what);
}

}  // namespace

DegreeHistogram DegreeHistogram::power_law(std::uint64_t n, double alpha,
                                           std::uint64_t d_min,
                                           std::uint64_t d_max) {
  if (n == 0) histogram_error("power_law needs n >= 1");
  if (!(alpha > 0.0)) histogram_error("power_law needs alpha > 0");
  if (d_min == 0 || d_min > d_max) {
    histogram_error("power_law needs 1 <= d_min <= d_max");
  }
  if (d_max > kMaxPowerLawDegree) {
    histogram_error("power_law needs d_max <= 2^20");
  }

  struct Bucket {
    std::uint64_t lo, hi;
    double mass;   // Σ_{d in [lo,hi]} d^(−alpha)
    double wmean;  // probability-weighted mean degree of the bucket
  };
  std::vector<Bucket> buckets;
  double total_mass = 0.0;
  for (std::uint64_t lo = d_min; lo <= d_max;) {
    const auto stepped = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(lo) * kBucketRatio));
    const std::uint64_t hi = std::min(d_max, std::max(lo, stepped - 1));
    double mass = 0.0, wsum = 0.0;
    for (std::uint64_t d = lo; d <= hi; ++d) {
      const double w = std::pow(static_cast<double>(d), -alpha);
      mass += w;
      wsum += w * static_cast<double>(d);
    }
    buckets.push_back({lo, hi, mass, wsum / mass});
    total_mass += mass;
    lo = hi + 1;
  }

  // Integer class sizes by largest remainder: floor every target, then hand
  // the leftover vertices to the largest fractional parts (ties broken by
  // bucket index, so the rounding is deterministic).
  const std::size_t B = buckets.size();
  std::vector<std::uint64_t> sizes(B);
  std::vector<std::pair<double, std::size_t>> fractional(B);
  std::uint64_t assigned = 0;
  for (std::size_t b = 0; b < B; ++b) {
    const double target =
        static_cast<double>(n) * buckets[b].mass / total_mass;
    sizes[b] = static_cast<std::uint64_t>(std::floor(target));
    assigned += sizes[b];
    fractional[b] = {target - std::floor(target), b};
  }
  std::sort(fractional.begin(), fractional.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first > b.first
                                        : a.second < b.second;
            });
  for (std::size_t i = 0; assigned < n; ++i) {
    ++sizes[fractional[i % B].second];
    ++assigned;
  }
  for (std::size_t i = 0; assigned > n; ++i) {  // FP-drift guard
    auto& s = sizes[fractional[B - 1 - (i % B)].second];
    if (s > 0) {
      --s;
      --assigned;
    }
  }

  // Representative degree: the bucket's weighted mean, clamped into the
  // bucket. Buckets are disjoint ascending ranges, so representatives are
  // strictly increasing automatically.
  DegreeHistogram hist;
  for (std::size_t b = 0; b < B; ++b) {
    if (sizes[b] == 0) continue;  // drop empty buckets (tiny tail classes)
    const auto rep = std::clamp(
        static_cast<std::uint64_t>(std::llround(buckets[b].wmean)),
        buckets[b].lo, buckets[b].hi);
    hist.degrees.push_back(rep);
    hist.class_sizes.push_back(sizes[b]);
  }
  hist.validate();
  return hist;
}

std::uint64_t DegreeHistogram::total_vertices() const noexcept {
  std::uint64_t n = 0;
  for (const std::uint64_t s : class_sizes) n += s;
  return n;
}

std::uint64_t DegreeHistogram::total_stubs() const noexcept {
  std::uint64_t m = 0;
  for (std::size_t c = 0; c < degrees.size(); ++c) {
    m += degrees[c] * class_sizes[c];
  }
  return m;
}

std::vector<std::uint64_t> DegreeHistogram::vertex_offsets() const {
  std::vector<std::uint64_t> offsets(class_sizes.size() + 1, 0);
  for (std::size_t c = 0; c < class_sizes.size(); ++c) {
    offsets[c + 1] = offsets[c] + class_sizes[c];
  }
  return offsets;
}

std::vector<std::uint64_t> DegreeHistogram::stub_offsets() const {
  std::vector<std::uint64_t> offsets(class_sizes.size() + 1, 0);
  for (std::size_t c = 0; c < class_sizes.size(); ++c) {
    offsets[c + 1] = offsets[c] + degrees[c] * class_sizes[c];
  }
  return offsets;
}

void DegreeHistogram::validate() const {
  if (degrees.empty()) histogram_error("need >= 1 degree class");
  if (degrees.size() != class_sizes.size()) {
    histogram_error("degrees and class_sizes must have equal length");
  }
  unsigned __int128 stubs = 0;
  for (std::size_t c = 0; c < degrees.size(); ++c) {
    if (degrees[c] == 0) histogram_error("degrees must be >= 1");
    if (c > 0 && degrees[c] <= degrees[c - 1]) {
      histogram_error("degrees must be strictly increasing");
    }
    if (class_sizes[c] == 0) histogram_error("class sizes must be >= 1");
    stubs += static_cast<unsigned __int128>(degrees[c]) * class_sizes[c];
  }
  if (stubs >= (static_cast<unsigned __int128>(1) << 63)) {
    histogram_error("total stub count must be < 2^63");
  }
}

}  // namespace consensus::graph
