// ScopedDenormalGuard: RAII flush-to-zero / denormals-are-zero control for
// benchmark hot loops (the shape of Ymir's util/lsn_denormals.hpp helpers).
//
// FTZ/DAZ change arithmetic results for subnormal operands, so the guard
// is EXCLUDED from every bit-identity-contracted path: nothing in the
// library engages it on its own, tests pin that default runs never set the
// MXCSR flush bits, and bench_perf_engines only arms it behind the
// explicit CONSENSUS_DENORMAL_FTZ=1 opt-in (recorded in the artifact's
// provenance so a flushed run can never masquerade as a contracted one).
//
// x86-64: sets MXCSR.FTZ (bit 15) and MXCSR.DAZ (bit 6), restoring the
// caller's full MXCSR on destruction. aarch64: sets FPCR.FZ (bit 24).
// Elsewhere the guard is a no-op and supported() reports false.
#pragma once

#include <cstdint>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CONSENSUS_DENORMALS_X86 1
#include <immintrin.h>
#else
#define CONSENSUS_DENORMALS_X86 0
#endif

#if defined(__aarch64__) && (defined(__GNUC__) || defined(__clang__))
#define CONSENSUS_DENORMALS_AARCH64 1
#else
#define CONSENSUS_DENORMALS_AARCH64 0
#endif

namespace consensus::support {

class ScopedDenormalGuard {
 public:
#if CONSENSUS_DENORMALS_X86
  static constexpr std::uint32_t kFlushBits = (1u << 15) | (1u << 6);

  ScopedDenormalGuard() noexcept : saved_(_mm_getcsr()) {
    _mm_setcsr(saved_ | kFlushBits);
  }
  ~ScopedDenormalGuard() noexcept { _mm_setcsr(saved_); }

  static bool supported() noexcept { return true; }
  /// True when the calling thread currently flushes denormals (either
  /// MXCSR bit set) — the probe the default-off test pins to false.
  static bool flush_active() noexcept {
    return (_mm_getcsr() & kFlushBits) != 0;
  }
#elif CONSENSUS_DENORMALS_AARCH64
  static constexpr std::uint64_t kFlushBits = 1ull << 24;  // FPCR.FZ

  ScopedDenormalGuard() noexcept : saved_(read_fpcr()) {
    write_fpcr(saved_ | kFlushBits);
  }
  ~ScopedDenormalGuard() noexcept { write_fpcr(saved_); }

  static bool supported() noexcept { return true; }
  static bool flush_active() noexcept {
    return (read_fpcr() & kFlushBits) != 0;
  }
#else
  ScopedDenormalGuard() noexcept = default;
  ~ScopedDenormalGuard() noexcept = default;

  static bool supported() noexcept { return false; }
  static bool flush_active() noexcept { return false; }
#endif

  ScopedDenormalGuard(const ScopedDenormalGuard&) = delete;
  ScopedDenormalGuard& operator=(const ScopedDenormalGuard&) = delete;

 private:
#if CONSENSUS_DENORMALS_X86
  std::uint32_t saved_;
#elif CONSENSUS_DENORMALS_AARCH64
  static std::uint64_t read_fpcr() noexcept {
    std::uint64_t v;
    asm volatile("mrs %0, fpcr" : "=r"(v));
    return v;
  }
  static void write_fpcr(std::uint64_t v) noexcept {
    asm volatile("msr fpcr, %0" : : "r"(v));
  }
  std::uint64_t saved_;
#endif
};

}  // namespace consensus::support
