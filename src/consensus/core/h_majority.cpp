#include "consensus/core/h_majority.hpp"

#include <stdexcept>

#include "consensus/support/sampling.hpp"

namespace consensus::core {

HMajority::HMajority(unsigned h) : h_(h) {
  if (h == 0) throw std::invalid_argument("HMajority: h >= 1 required");
  name_ = "h-majority:" + std::to_string(h);
}

Opinion HMajority::update(Opinion current, OpinionSampler& neighbors,
                          support::Rng& rng) const {
  (void)current;
  // Reservoir-style argmax with uniform tie-breaking over the h samples.
  // h is small (<= ~15 in practice), so a flat scratch array beats a map.
  Opinion samples[64];
  unsigned counts[64];
  unsigned distinct = 0;
  for (unsigned s = 0; s < h_; ++s) {
    const Opinion o = neighbors.sample(rng);
    bool found = false;
    for (unsigned d = 0; d < distinct; ++d) {
      if (samples[d] == o) {
        ++counts[d];
        found = true;
        break;
      }
    }
    if (!found) {
      if (distinct == 64)
        throw std::logic_error("HMajority: h > 64 unsupported");
      samples[distinct] = o;
      counts[distinct] = 1;
      ++distinct;
    }
  }
  unsigned best = 0;
  unsigned ties = 1;
  for (unsigned d = 1; d < distinct; ++d) {
    if (counts[d] > counts[best]) {
      best = d;
      ties = 1;
    } else if (counts[d] == counts[best]) {
      // Uniform choice among ties via reservoir sampling.
      ++ties;
      if (rng.uniform_below(ties) == 0) best = d;
    }
  }
  return samples[best];
}

bool HMajority::outcome_distribution(Opinion current, const Configuration& cur,
                                     std::vector<double>& out) const {
  (void)current;  // the rule ignores the holder's opinion
  const std::size_t k = cur.num_opinions();

  // Histograms that put samples on an extinct opinion have probability 0,
  // so enumerate over the alive opinions only: C(h+a-1, h) histograms.
  // Budget the *total work* (histograms × alive opinions) before building
  // any scratch: for small h with huge k the histogram count alone is
  // affordable but the per-histogram scan is not.
  // h > 170 overflows the double factorial table to inf (NaN probabilities
  // downstream); update() allows such h, so decline to the exact fallback.
  if (h_ > 170) return false;
  std::size_t a = 0;
  for (std::size_t i = 0; i < k; ++i) a += (cur.counts()[i] > 0);
  const std::uint64_t histograms = support::num_compositions(h_, a);
  if (histograms > kCompositionBudget ||
      histograms * static_cast<std::uint64_t>(a) > kWorkBudget) {
    return false;
  }

  // Scratch is thread_local (not per-call heap, not mutable members): a
  // steady-state batched round allocates nothing, and one protocol
  // instance stays safe to share across engine threads.
  thread_local std::vector<std::uint32_t> alive;
  thread_local std::vector<double> fact;
  thread_local std::vector<double> pow_table;
  thread_local std::vector<std::uint32_t> tied;

  alive.clear();
  for (std::size_t i = 0; i < k; ++i) {
    if (cur.counts()[i] > 0) alive.push_back(static_cast<std::uint32_t>(i));
  }
  // h <= 170 here (guarded above), so factorials fit in doubles.
  fact.resize(h_ + 1);
  fact[0] = 1.0;
  for (unsigned i = 1; i <= h_; ++i) fact[i] = fact[i - 1] * i;
  // pow_table[i*(h+1) + j] = alpha(alive[i])^j.
  pow_table.resize(a * (h_ + 1));
  for (std::size_t i = 0; i < a; ++i) {
    const double alpha = cur.alpha(alive[i]);
    pow_table[i * (h_ + 1)] = 1.0;
    for (unsigned j = 1; j <= h_; ++j) {
      pow_table[i * (h_ + 1) + j] = pow_table[i * (h_ + 1) + j - 1] * alpha;
    }
  }

  out.assign(k, 0.0);
  tied.clear();
  tied.reserve(a);
  support::for_each_composition(
      h_, a, [&](std::span<const std::uint32_t> hist) {
        // P(histogram) = h!/∏c_i! · ∏α_i^{c_i}; the winner is the argmax
        // count with uniform tie-breaking, exactly as in update().
        double p = fact[h_];
        std::uint32_t best = 0;
        tied.clear();
        for (std::size_t i = 0; i < a; ++i) {
          const std::uint32_t c = hist[i];
          p *= pow_table[i * (h_ + 1) + c] / fact[c];
          if (c > best) {
            best = c;
            tied.clear();
          }
          if (c == best) tied.push_back(alive[i]);
        }
        const double share = p / static_cast<double>(tied.size());
        for (std::uint32_t winner : tied) out[winner] += share;
      });
  return true;
}

std::unique_ptr<Protocol> make_h_majority(unsigned h) {
  return std::make_unique<HMajority>(h);
}

}  // namespace consensus::core
