#include "consensus/support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace consensus::support {

ConsoleTable::ConsoleTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  if (columns_.empty())
    throw std::invalid_argument("ConsoleTable: need at least one column");
}

void ConsoleTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != columns_.size())
    throw std::invalid_argument("ConsoleTable: row width mismatch");
  rows_.push_back(std::move(cells));
}

void ConsoleTable::print(std::ostream& out) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c)
    width[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << cells[c];
      if (c + 1 < cells.size())
        out << std::string(width[c] - cells[c].size() + 2, ' ');
    }
    out << '\n';
  };
  emit(columns_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, format, value);
  return buf;
}

std::string fmt_u(std::uint64_t value) { return std::to_string(value); }

void print_banner(std::ostream& out, const std::string& title) {
  out << "\n==== " << title << " ====\n";
}

}  // namespace consensus::support
