// ABL-SURVIVAL — Remark 2.5 / [BCEKMN17]: after T rounds of 3-Majority at
// most O(n log n / T) opinions survive. The survival curve from the k = n
// balanced start makes the 1/T envelope visible; 2-Choices (for which the
// paper notes the [BCEKMN17] result does NOT hold) decays visibly slower.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "consensus/analysis/survival.hpp"

using namespace consensus;

int main() {
  const std::uint64_t n = 4096;
  const std::uint64_t max_rounds = 320;
  const std::uint64_t stride = 40;
  constexpr int kReps = 15;

  exp::ExperimentReport report(
      "ABL-SURVIVAL",
      "surviving opinions after T rounds from k=n (n=4096, 15 reps)",
      {"T", "3maj_alive", "envelope_nlogn/T", "2ch_alive"},
      "abl_survival.csv");

  analysis::SurvivalCurve curve3(max_rounds, stride);
  analysis::SurvivalCurve curve2(max_rounds, stride);
  const auto p3 = core::make_protocol("3-majority");
  const auto p2 = core::make_protocol("2-choices");
  support::Rng rng(0x50ab3);
  for (int rep = 0; rep < kReps; ++rep) {
    curve3.add_run(*p3, core::balanced(n, static_cast<std::uint32_t>(n)), rng);
    curve2.add_run(*p2, core::balanced(n, static_cast<std::uint32_t>(n)), rng);
  }

  const double nlogn =
      static_cast<double>(n) * std::log(static_cast<double>(n));
  bool envelope_ok = true;
  bool two_choices_slower = true;
  for (std::size_t i = 1; i < curve3.checkpoints(); ++i) {
    const auto t = static_cast<double>(curve3.round_at(i));
    const double envelope = nlogn / t;
    envelope_ok = envelope_ok && curve3.alive_count(i) <= envelope;
    two_choices_slower =
        two_choices_slower && curve2.alive_count(i) >= curve3.alive_count(i);
    report.add_row({std::to_string(curve3.round_at(i)),
                    bench::fmt1(curve3.alive_count(i)), bench::fmt1(envelope),
                    bench::fmt1(curve2.alive_count(i))});
  }
  report.add_check(
      "3-Majority survivors below the n log n / T envelope at every T",
      envelope_ok);
  report.add_check(
      "2-Choices keeps at least as many opinions alive as 3-Majority",
      two_choices_slower);
  return exp::exit_code(report.finish());
}
