#include "consensus/serve/wire.hpp"

namespace consensus::serve {

support::Json run_result_json(const api::ScenarioSpec& spec,
                              const core::RunResult& result) {
  auto j = support::Json::object();
  j.set("protocol", spec.protocol)
      .set("n", spec.n)
      .set("k", static_cast<std::uint64_t>(spec.k))
      .set("seed", spec.seed)
      .set("reached_consensus", result.reached_consensus)
      .set("rounds", result.rounds)
      .set("winner", static_cast<std::uint64_t>(
                         result.reached_consensus ? result.winner : 0))
      .set("validity", result.validity)
      .set("plurality_preserved", result.plurality_preserved)
      .set("initial_gamma", result.initial_gamma)
      .set("initial_margin", result.initial_margin);
  return j;
}

std::string_view to_string(JobKind kind) noexcept {
  return kind == JobKind::kScenario ? "scenario" : "sweep";
}

}  // namespace consensus::serve
