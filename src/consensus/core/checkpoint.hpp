// Checkpointing for long experiments: serialise a run's dynamic state
// (engine state + RNG stream position) to a small text file and restore it
// bit-exactly. Restored runs continue with the identical random stream, so
// checkpoint/resume is invisible to the results (tests assert this).
//
// Two layers:
//   - EngineCheckpoint / capture_engine / restore_engine: engine-generic —
//     works for all four backends through the core::Engine
//     capture_state/restore_state hooks. The caller rebuilds the static
//     scenario parts (protocol, graph, pool) and applies the checkpoint
//     onto the fresh engine; api::Simulation wraps this behind the facade
//     with the ScenarioSpec embedded in the file.
//   - The original counting-only `Checkpoint` (protocol name + counts +
//     RNG), kept as a thin wrapper over the same hooks because its file
//     format is self-contained (no external spec needed to restore).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "consensus/core/counting_engine.hpp"
#include "consensus/core/engine.hpp"
#include "consensus/core/protocol.hpp"
#include "consensus/support/rng.hpp"

namespace consensus::core {

// ------------------------------------------------------ engine-generic v2

/// Engine-generic checkpoint: dynamic engine state + the driving RNG's
/// exact stream position.
struct EngineCheckpoint {
  EngineState state;
  std::array<std::uint64_t, 4> rng_state{};

  friend bool operator==(const EngineCheckpoint&,
                         const EngineCheckpoint&) = default;
};

/// Captures any engine + RNG into a checkpoint value.
EngineCheckpoint capture_engine(const Engine& engine, const support::Rng& rng);

/// Applies a checkpoint onto a freshly built engine for the same scenario
/// and positions `rng` to continue the checkpointed stream. Throws
/// std::invalid_argument when the state does not fit the engine.
void restore_engine(Engine& engine, support::Rng& rng,
                    const EngineCheckpoint& checkpoint);

/// Stream/file serialisation (versioned line-oriented text). The stream
/// variants let callers embed the engine section inside a larger artifact
/// (api::Simulation prefixes the scenario spec).
void write_engine_checkpoint(std::ostream& out,
                             const EngineCheckpoint& checkpoint);
EngineCheckpoint read_engine_checkpoint(std::istream& in);
void save_engine_checkpoint(const EngineCheckpoint& checkpoint,
                            const std::string& path);
EngineCheckpoint load_engine_checkpoint(const std::string& path);

// ------------------------------------------- counting-only v1 (wrappers)

struct Checkpoint {
  std::string protocol_name;
  std::uint64_t round = 0;
  std::vector<std::uint64_t> counts;
  std::array<std::uint64_t, 4> rng_state{};
};

/// Captures engine + RNG into a checkpoint value.
Checkpoint capture(const CountingEngine& engine, const support::Rng& rng);

/// Writes/reads the checkpoint as a line-oriented text file (versioned).
void save_checkpoint(const Checkpoint& checkpoint, const std::string& path);
Checkpoint load_checkpoint(const std::string& path);

/// Rebuilds the engine and RNG from a checkpoint. The protocol object is
/// recreated via make_protocol and returned alongside (the engine holds a
/// reference to it).
struct RestoredRun {
  std::unique_ptr<Protocol> protocol;
  std::unique_ptr<CountingEngine> engine;
  support::Rng rng;
};

RestoredRun restore(const Checkpoint& checkpoint);

}  // namespace consensus::core
