#include "consensus/support/first_touch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "consensus/support/thread_pool.hpp"

namespace consensus::support {
namespace {

TEST(FirstTouchArray, CopiesAndIndexesLikeAVector) {
  std::vector<std::uint32_t> src(1000);
  std::iota(src.begin(), src.end(), 7u);
  FirstTouchArray<std::uint32_t> arr(src.data(), src.size());
  ASSERT_EQ(arr.size(), src.size());
  EXPECT_TRUE(std::equal(arr.begin(), arr.end(), src.begin()));
  arr[3] = 99u;
  EXPECT_EQ(arr[3], 99u);
  EXPECT_EQ(arr.data()[3], 99u);
}

TEST(FirstTouchArray, EmptyAndSwap) {
  FirstTouchArray<std::uint32_t> a;
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.size(), 0u);
  FirstTouchArray<std::uint32_t> b(5);
  std::fill(b.begin(), b.end(), 4u);
  a.swap(b);
  EXPECT_EQ(a.size(), 5u);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(a[4], 4u);
}

TEST(FirstTouchArray, RehomePreservesContentsBitForBit) {
  // Placement is invisible to correctness: after rehome the array must
  // hold exactly the same values, whatever the pool size or chunk size.
  std::vector<std::uint64_t> src(100'000);
  for (std::size_t i = 0; i < src.size(); ++i) src[i] = i * 2654435761u;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    for (const std::size_t chunk : {64u, 1337u, 1u << 16}) {
      FirstTouchArray<std::uint64_t> arr(src.data(), src.size());
      arr.rehome(pool, chunk);
      ASSERT_EQ(arr.size(), src.size());
      EXPECT_TRUE(std::equal(arr.begin(), arr.end(), src.begin()))
          << threads << " threads, chunk " << chunk;
    }
  }
}

TEST(FirstTouchArray, RehomeDegenerateCasesAreNoOps) {
  ThreadPool pool(2);
  FirstTouchArray<std::uint32_t> empty;
  empty.rehome(pool, 64);  // must not crash
  EXPECT_TRUE(empty.empty());

  // One chunk ⇒ one worker ⇒ nothing to stripe.
  std::vector<std::uint32_t> src(10, 3u);
  FirstTouchArray<std::uint32_t> small(src.data(), src.size());
  const std::uint32_t* before = small.data();
  small.rehome(pool, 64);
  EXPECT_EQ(small.data(), before);  // storage untouched
  EXPECT_TRUE(std::equal(small.begin(), small.end(), src.begin()));

  small.rehome(pool, 0);  // chunk_elems == 0 guarded
  EXPECT_EQ(small.data(), before);
}

}  // namespace
}  // namespace consensus::support
