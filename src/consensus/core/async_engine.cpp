#include "consensus/core/async_engine.hpp"

#include <stdexcept>

#include "consensus/core/fused.hpp"

namespace consensus::core {

namespace {

/// Neighbour opinions under the asynchronous rule: categorical with weights
/// proportional to the *current* counts (the woken vertex still counts
/// itself — K_n has self-loops). Non-virtual draw/draw_many serve the
/// fused tick; the virtual sample override serves protocols outside the
/// built-in set. Both consume the identical Fenwick draw stream, so fused
/// and virtual ticks are bit-identical.
class FenwickOpinionSampler final : public OpinionSampler {
 public:
  FenwickOpinionSampler(const support::FenwickSampler& fenwick,
                        std::size_t slots) noexcept
      : fenwick_(&fenwick), slots_(slots) {}

  Opinion draw(support::Rng& rng) const {
    return static_cast<Opinion>(fenwick_->sample(rng));
  }
  void draw_many(support::Rng& rng, Opinion* out, unsigned count) const {
    for (unsigned i = 0; i < count; ++i) out[i] = draw(rng);
  }

  Opinion sample(support::Rng& rng) override { return draw(rng); }

  std::size_t num_slots() const noexcept override { return slots_; }

 private:
  const support::FenwickSampler* fenwick_;
  std::size_t slots_;
};

}  // namespace

AsyncEngine::AsyncEngine(const Protocol& protocol, Configuration initial)
    : protocol_(&protocol),
      config_(std::move(initial)),
      sampler_(config_.counts()) {}

void AsyncEngine::tick(support::Rng& rng) {
  // Waking a uniformly random vertex == picking its opinion class with
  // probability count/n.
  const auto current = static_cast<Opinion>(sampler_.sample(rng));
  FenwickOpinionSampler neighbors(sampler_, config_.num_opinions());
  Opinion next = current;
  // Built-in rules run devirtualized (the update body inlines around the
  // Fenwick draws); anything else takes the virtual reference path.
  if (!visit_fused(*protocol_, [&](const auto& protocol) {
        next = protocol.update_from_draws(current, neighbors, rng);
      })) {
    next = protocol_->update(current, neighbors, rng);
  }
  if (next != current) {
    config_.move(current, next, 1);
    sampler_.add(current, -1);
    sampler_.add(next, +1);
  }
  ++ticks_;
}

void AsyncEngine::step_round(support::Rng& rng) {
  const std::uint64_t n = config_.num_vertices();
  for (std::uint64_t i = 0; i < n; ++i) tick(rng);
}

EngineState AsyncEngine::capture_state() const {
  EngineState state;
  state.kind = "async";
  state.progress = ticks_;
  state.counts.assign(config_.counts().begin(), config_.counts().end());
  return state;
}

void AsyncEngine::restore_state(const EngineState& state) {
  if (state.kind != "async") {
    throw std::invalid_argument(
        "AsyncEngine::restore_state: state is for engine kind '" +
        state.kind + "'");
  }
  config_.replace_counts(state.counts);
  sampler_ = support::FenwickSampler(config_.counts());
  ticks_ = state.progress;
}

}  // namespace consensus::core
