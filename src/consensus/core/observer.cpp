#include "consensus/core/observer.hpp"

#include <cmath>

namespace consensus::core {

void TrajectoryRecorder::observe(std::uint64_t round,
                                 const Configuration& config) {
  if (round % stride_ != 0 && round != 0) return;
  TrajectoryPoint p;
  p.round = round;
  p.gamma = config.gamma();
  p.alpha_max = config.alpha(config.plurality());
  p.support = config.support_size();
  p.margin = config.num_opinions() >= 2 ? config.plurality_margin() : 0.0;
  points_.push_back(p);
}

void StoppingTimeTracker::observe(std::uint64_t round,
                                  const Configuration& config) {
  const Opinion i = options_.focus_i;
  const Opinion j = options_.focus_j;
  const double gamma = config.gamma();
  const double weak_line = (1.0 - options_.constants.c_weak) * gamma;

  if (tau_weak_i_ == kNever && config.alpha(i) <= weak_line)
    tau_weak_i_ = round;
  if (tau_weak_j_ == kNever && config.alpha(j) <= weak_line)
    tau_weak_j_ = round;
  if (tau_vanish_i_ == kNever && config.count(i) == 0) tau_vanish_i_ = round;
  if (tau_vanish_j_ == kNever && config.count(j) == 0) tau_vanish_j_ = round;
  if (options_.bias_target > 0.0 && tau_bias_ == kNever &&
      std::fabs(config.bias(i, j)) >= options_.bias_target)
    tau_bias_ = round;
  if (options_.gamma_target > 0.0 && tau_gamma_ == kNever &&
      gamma >= options_.gamma_target)
    tau_gamma_ = round;
  if (tau_consensus_ == kNever && config.is_consensus())
    tau_consensus_ = round;
}

}  // namespace consensus::core
