// Engine-equivalence suite: all four engines behind the one core::Engine
// interface, driven by the same generic loop on the same seeds. Checks the
// interface contract (configuration/rounds_elapsed/winner coherence,
// determinism per seed) and that every backend solves the same consensus
// problem with a valid outcome.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "consensus/api/simulation.hpp"
#include "consensus/core/engine.hpp"
#include "consensus/core/runner.hpp"

namespace consensus::api {
namespace {

/// The four backends for one scenario shape: the undecided protocol is
/// single-sample, so even the pairwise engine qualifies.
std::vector<EngineChoice> all_backends() {
  return {EngineChoice::kCounting, EngineChoice::kAgent, EngineChoice::kAsync,
          EngineChoice::kPairwise};
}

ScenarioSpec base_spec(EngineChoice engine) {
  ScenarioSpec spec;
  spec.protocol = "undecided";
  spec.n = 600;
  spec.k = 3;
  spec.engine = engine;
  spec.max_rounds = 200000;
  spec.seed = 0xe9e9;
  return spec;
}

TEST(EngineEquivalence, EveryBackendRunsTheSameScenarioThroughEngine) {
  for (EngineChoice choice : all_backends()) {
    auto sim = Simulation::from_spec(base_spec(choice));
    const std::unique_ptr<core::Engine> engine = sim.make_engine();

    // Interface contract at round 0.
    EXPECT_EQ(engine->rounds_elapsed(), 0u) << to_string(choice);
    const core::Configuration start = engine->configuration();
    EXPECT_EQ(start.num_vertices(), 600u) << to_string(choice);
    EXPECT_EQ(&engine->protocol(), &sim.protocol()) << to_string(choice);
    EXPECT_EQ(engine->supports_topology(), choice == EngineChoice::kAgent)
        << to_string(choice);

    // Drive it with the generic runner loop.
    support::Rng rng(7);
    const core::RunResult result = core::run_to_consensus(*engine, rng);
    EXPECT_TRUE(result.reached_consensus) << to_string(choice);
    EXPECT_TRUE(result.validity) << to_string(choice);
    EXPECT_EQ(engine->rounds_elapsed(), result.rounds) << to_string(choice);
    EXPECT_TRUE(engine->is_consensus()) << to_string(choice);
    EXPECT_EQ(engine->winner(), result.winner) << to_string(choice);
    // The winner is a real opinion of the start (undecided ⊥ cannot win).
    EXPECT_LT(result.winner, 3u) << to_string(choice);
    EXPECT_GT(start.count(result.winner), 0u) << to_string(choice);
  }
}

TEST(EngineEquivalence, SameSeedSameTrajectoryPerBackend) {
  for (EngineChoice choice : all_backends()) {
    auto sim = Simulation::from_spec(base_spec(choice));
    auto run_once = [&] {
      const auto engine = sim.make_engine();
      support::Rng rng(99);
      const auto result = core::run_to_consensus(*engine, rng);
      return std::make_pair(result.rounds, result.winner);
    };
    EXPECT_EQ(run_once(), run_once()) << to_string(choice);
  }
}

TEST(EngineEquivalence, StepAdvancesOneRoundEquivalent) {
  for (EngineChoice choice : all_backends()) {
    auto sim = Simulation::from_spec(base_spec(choice));
    const auto engine = sim.make_engine();
    support::Rng rng(3);
    engine->step(rng);
    EXPECT_EQ(engine->rounds_elapsed(), 1u) << to_string(choice);
    const core::Configuration after = engine->configuration();
    EXPECT_EQ(after.num_vertices(), 600u) << to_string(choice);
  }
}

TEST(EngineEquivalence, MutableConfigurationOnlyOnCounting) {
  for (EngineChoice choice : all_backends()) {
    auto sim = Simulation::from_spec(base_spec(choice));
    const auto engine = sim.make_engine();
    if (choice == EngineChoice::kCounting) {
      ASSERT_NE(engine->mutable_configuration(), nullptr);
    } else {
      EXPECT_EQ(engine->mutable_configuration(), nullptr)
          << to_string(choice);
    }
  }
}

TEST(EngineEquivalence, ConsensusTimesAgreeAcrossSchedulings) {
  // Sync counting vs agent vs round-equivalent async on the same scenario:
  // medians within a generous constant factor (the chains agree up to
  // Θ(1) once ticks are divided by n — §1.1). Pairwise is excluded: its
  // ordered-pair model is a different chain with its own constants.
  std::vector<double> medians;
  for (EngineChoice choice :
       {EngineChoice::kCounting, EngineChoice::kAgent, EngineChoice::kAsync}) {
    auto sim = Simulation::from_spec(base_spec(choice));
    const auto stats = sim.run_many(10, 2);
    ASSERT_EQ(stats.consensus_reached, 10u) << to_string(choice);
    medians.push_back(stats.rounds.median);
  }
  for (double m : medians) {
    EXPECT_GT(m, 0.0);
    EXPECT_LT(m, 12.0 * medians[0]);
    EXPECT_GT(m, medians[0] / 12.0);
  }
}

}  // namespace
}  // namespace consensus::api
