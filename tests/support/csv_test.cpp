#include "consensus/support/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "test_util.hpp"

namespace consensus::support {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  /// Per-(test, process) file — see testing::unique_temp_path.
  std::string path_ = consensus::testing::unique_temp_path(".csv");
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, RoundTrip) {
  {
    CsvWriter w(path_);
    w.header({"name", "value", "note"});
    w.field("alpha").field(1.5).field("plain").end_row();
    w.field("beta").field(std::uint64_t{42}).field("with,comma").end_row();
    w.field("gamma").field(std::int64_t{-7}).field("with \"quote\"").end_row();
  }
  const CsvTable t = read_csv(path_);
  ASSERT_EQ(t.columns.size(), 3u);
  ASSERT_EQ(t.rows.size(), 3u);
  EXPECT_EQ(t.rows[0][0], "alpha");
  EXPECT_DOUBLE_EQ(t.number(0, "value"), 1.5);
  EXPECT_DOUBLE_EQ(t.number(1, "value"), 42.0);
  EXPECT_EQ(t.rows[1][2], "with,comma");
  EXPECT_EQ(t.rows[2][2], "with \"quote\"");
  EXPECT_DOUBLE_EQ(t.number(2, "value"), -7.0);
}

TEST_F(CsvTest, RowWidthEnforced) {
  CsvWriter w(path_);
  w.header({"a", "b"});
  w.field("x");
  EXPECT_THROW(w.end_row(), std::logic_error);
}

TEST_F(CsvTest, DoubleHeaderRejected) {
  CsvWriter w(path_);
  w.header({"a"});
  EXPECT_THROW(w.header({"b"}), std::logic_error);
}

TEST(CsvEscape, QuotingRules) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvTable, MissingColumnThrows) {
  CsvTable t;
  t.columns = {"x"};
  EXPECT_THROW(t.column_index("y"), std::out_of_range);
}

TEST(ReadCsv, MissingFileThrows) {
  EXPECT_THROW(read_csv("/nonexistent/definitely/not/here.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace consensus::support
