// Tiny command-line flag parser for the CLI tool and examples.
// Supports --key=value, --key value, bare --switch, and positional
// arguments. No external dependencies, no global state.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace consensus::support {

class Flags {
 public:
  /// Parses argv (excluding argv[0]). Throws std::invalid_argument on
  /// malformed input ("--=x", empty flag names).
  static Flags parse(int argc, const char* const* argv);

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  bool has(const std::string& name) const;

  /// Typed getters: return the default when absent; throw on parse errors.
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  std::uint64_t get_uint(const std::string& name,
                         std::uint64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback = false) const;

  /// Comma-separated list of unsigned integers ("2,4,8").
  std::vector<std::uint64_t> get_uint_list(
      const std::string& name, std::vector<std::uint64_t> fallback) const;

  /// Flags that were provided but never read — typo detection for the CLI.
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> read_;
};

}  // namespace consensus::support
