// Minimal JSON value + serializer for machine-readable CLI output and
// experiment artifacts. Writer-grade: builds values and renders RFC-8259
// conformant text (escaping, lossless double formatting). Not a parser.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace consensus::support {

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(std::int64_t i) : value_(i) {}
  Json(std::uint64_t u) : value_(static_cast<std::int64_t>(u)) {}
  Json(int i) : value_(static_cast<std::int64_t>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}

  static Json object() {
    Json j;
    j.value_ = Object{};
    return j;
  }
  static Json array() {
    Json j;
    j.value_ = Array{};
    return j;
  }

  /// Object field assignment (creates/overwrites). Throws on non-objects.
  Json& set(const std::string& key, Json value);
  /// Array append. Throws on non-arrays.
  Json& push(Json value);

  bool is_object() const noexcept;
  bool is_array() const noexcept;

  /// Renders compact JSON; `indent` > 0 pretty-prints.
  std::string dump(int indent = 0) const;

  /// Escapes a string per RFC 8259 (quotes included).
  static std::string escape(const std::string& raw);

 private:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      value_;

  void render(std::string& out, int indent, int depth) const;
};

}  // namespace consensus::support
