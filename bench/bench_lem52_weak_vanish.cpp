// LEM52 — Lemma 5.2: weak opinions vanish within O(log n / γ₀) rounds.
//
// Workload: a planted-weak start (opinion 0 holds a small fraction while
// one opinion dominates, making γ large and opinion 0 weak per Definition
// 4.4). We measure τ_vanish(0) across n and weak fractions and compare to
// the log n/γ₀ envelope.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"

using namespace consensus;

namespace {

support::Summary vanish_times(const char* protocol_name,
                              const core::Configuration& start,
                              std::size_t reps, std::uint64_t seed) {
  const auto runs = bench::run_tracked(
      bench::scenario(protocol_name, start, seed, 100000), reps);
  std::vector<double> ok;
  for (const auto& tracker : runs.trackers) {
    if (tracker.tau_vanish_i() != core::kNever) {
      ok.push_back(static_cast<double>(tracker.tau_vanish_i()));
    }
  }
  return ok.empty() ? support::Summary{} : support::summarize(ok);
}

}  // namespace

int main() {
  exp::ExperimentReport report(
      "LEM52", "weak-opinion vanishing time vs log n / gamma0 (25 reps)",
      {"dynamics", "n", "weak_frac", "gamma0", "tau_vanish_med",
       "tau_vanish_max", "envelope_logn/g0"},
      "lem52_weak_vanish.csv");

  bool always_vanished = true;
  bool within_envelope = true;
  for (const char* name : {"3-majority", "2-choices"}) {
    for (std::uint64_t n : {4096ull, 16384ull, 65536ull}) {
      for (double frac : {0.02, 0.08}) {
        const auto start = core::planted_weak(n, 8, frac);
        if (!start.is_weak(0)) continue;  // defensive; always weak here
        const double gamma0 = start.gamma();
        const auto s = vanish_times(name, start, 25, 0x5201);
        const double envelope =
            30.0 * std::log(static_cast<double>(n)) / gamma0;
        always_vanished = always_vanished && s.n == 25;
        within_envelope = within_envelope && s.max <= envelope;
        report.add_row({name, std::to_string(n), bench::fmt3(frac),
                        bench::fmt3(gamma0), bench::fmt1(s.median),
                        bench::fmt1(s.max), bench::fmt1(envelope)});
      }
    }
  }
  report.add_check("weak opinion vanished in every replication",
                   always_vanished);
  report.add_check("all vanishing times within 30 * log n / gamma0",
                   within_envelope);
  return exp::exit_code(report.finish());
}
