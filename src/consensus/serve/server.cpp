#include "consensus/serve/server.hpp"

#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "consensus/api/sweep_runner.hpp"
#include "consensus/experiment/shard.hpp"
#include "consensus/experiment/sink.hpp"
#include "consensus/support/cancel.hpp"
#include "consensus/support/fault_injection.hpp"
#include "consensus/support/simd_kernels.hpp"

namespace consensus::serve {

namespace {

/// One JSONL line for a finished trial: the manifest record plus a "type"
/// tag so clients can split trials from the summary in one stream.
std::string trial_line(const exp::TrialRecord& record) {
  auto j = exp::record_to_json(record);
  j.set("type", "trial");
  return j.dump();
}

/// Appends every finished trial to the job's result stream and feeds the
/// job's progress counters (trials done, rounds simulated) so ?wait=0
/// status snapshots can report pace and ETA while the job runs.
class JobLineSink final : public exp::ResultSink {
 public:
  explicit JobLineSink(Job& job) : job_(&job) {}

  void on_trial(const exp::TrialRecord& record) override {
    job_->append_line(trial_line(record));
    job_->record_trial(record.result.rounds, record.replayed);
  }

 private:
  Job* job_;
};

/// Per-engine trial counters ("engine_counting_trials", ...) keyed by the
/// resolved backend of each grid point.
class EngineMetricsSink final : public exp::ResultSink {
 public:
  EngineMetricsSink(support::Metrics& metrics,
                    std::vector<api::EngineChoice> kinds)
      : metrics_(&metrics), kinds_(std::move(kinds)) {}

  void on_trial(const exp::TrialRecord& record) override {
    if (record.point_index < kinds_.size()) {
      metrics_->add("engine_" +
                    std::string(api::to_string(kinds_[record.point_index])) +
                    "_trials");
    }
  }

 private:
  support::Metrics* metrics_;
  std::vector<api::EngineChoice> kinds_;
};

support::Json point_stats_json(const exp::PointStats& stats) {
  return support::Json::object()
      .set("replications", static_cast<std::uint64_t>(stats.replications))
      .set("success_rate", stats.success_rate)
      .set("median_rounds", stats.rounds.median)
      .set("mean_rounds", stats.rounds.mean)
      .set("min_rounds", stats.rounds.min)
      .set("max_rounds", stats.rounds.max)
      .set("validity_violations",
           static_cast<std::uint64_t>(stats.validity_violations));
}

std::string error_body(const std::string& message) {
  return support::Json::object().set("error", message).dump() + "\n";
}

/// Job names become manifest file names; restrict to a safe charset so a
/// hostile name cannot traverse out of the state dir.
std::string sanitize_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || out[0] == '.') out.insert(out.begin(), '_');
  return out;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), queue_(options_.queue_capacity) {}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.exchange(true)) {
    throw std::logic_error("Server::start: already running");
  }
  if (!options_.state_dir.empty()) {
    std::filesystem::create_directories(options_.state_dir);
  }
  started_at_ = std::chrono::steady_clock::now();
  listener_ = std::make_unique<support::TcpListener>(options_.port);
  port_ = listener_->port();
  accept_thread_ = std::thread([this] { accept_loop(); });
  workers_.reserve(options_.workers);
  for (std::size_t w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void Server::stop() {
  if (!running_.exchange(false)) return;
  if (listener_ != nullptr) listener_->close();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Fail everything still queued so streaming readers settle, then let
  // each worker finish its in-flight job and exit on the shutdown signal.
  queue_.shutdown();
  for (const auto& job : queue_.drain()) {
    job->fail("server shutting down");
    metrics_.add("jobs_failed");
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  std::vector<std::thread> conns;
  {
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    conns.swap(conn_threads_);
  }
  for (std::thread& conn : conns) {
    if (conn.joinable()) conn.join();
  }
  {
    const std::lock_guard<std::mutex> lock(stopped_mutex_);
    stop_requested_ = true;
  }
  stopped_cv_.notify_all();
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(stopped_mutex_);
  stopped_cv_.wait(lock, [&] { return stop_requested_; });
}

void Server::accept_loop() {
  for (;;) {
    support::TcpStream stream = listener_->accept();
    if (!stream.valid()) return;  // listener closed: shutting down
    stream.set_recv_timeout(options_.recv_timeout_ms);
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    conn_threads_.emplace_back(
        [this, s = std::move(stream)]() mutable {
          handle_connection(std::move(s));
        });
  }
}

void Server::handle_connection(support::TcpStream stream) {
  try {
    HttpRequest request;
    while (read_request(stream, &request)) {
      metrics_.add("http_requests");
      handle_request(stream, request);
    }
  } catch (const std::exception&) {
    // Malformed framing, recv timeout, or a peer that vanished — drop the
    // connection; per-connection state dies with this thread.
    metrics_.add("http_connection_errors");
  }
}

void Server::handle_request(support::TcpStream& stream,
                            const HttpRequest& request) {
  if (request.path == "/healthz" && request.method == "GET") {
    write_response(stream, 200, "text/plain", "ok\n");
    return;
  }
  if (request.path == "/metrics" && request.method == "GET") {
    handle_metrics(stream, request);
    return;
  }
  if (request.path == "/scenario" && request.method == "POST") {
    handle_submit(stream, request, JobKind::kScenario);
    return;
  }
  if (request.path == "/sweep" && request.method == "POST") {
    handle_submit(stream, request, JobKind::kSweep);
    return;
  }
  if (request.path.rfind("/jobs/", 0) == 0 && request.method == "GET") {
    handle_job_get(stream, request);
    return;
  }
  if (request.path.rfind("/jobs/", 0) == 0 && request.method == "DELETE") {
    handle_job_delete(stream, request);
    return;
  }
  write_response(stream, 404, "application/json",
                 error_body("no such endpoint: " + request.method + " " +
                            request.path));
}

void Server::handle_submit(support::TcpStream& stream,
                           const HttpRequest& request, JobKind kind) {
  JobRequest job_request;
  job_request.kind = kind;
  job_request.spec_text = request.body;
  job_request.name = request.query_value("name");
  try {
    // Validate at the door: a bad spec is the submitter's 400, not a
    // failed job discovered later.
    const std::string timeout = request.query_value("timeout_s");
    if (!timeout.empty()) {
      job_request.timeout_s = std::stod(timeout);
      if (!(job_request.timeout_s > 0)) {
        throw std::invalid_argument("timeout_s must be > 0");
      }
    }
    if (kind == JobKind::kScenario) {
      (void)api::ScenarioSpec::from_json_text(job_request.spec_text);
      job_request.replications =
          std::stoull(request.query_value("reps", "1"));
      if (job_request.replications == 0) {
        throw std::invalid_argument("reps must be >= 1");
      }
    } else {
      (void)api::SweepSpec::from_json_text(job_request.spec_text);
      const std::string shard = request.query_value("shard", "0/1");
      const exp::ShardPlan plan = exp::parse_shard(shard);
      job_request.shard_index = plan.index;
      job_request.shard_count = plan.count;
    }
  } catch (const std::exception& e) {
    metrics_.add("jobs_rejected_invalid");
    write_response(stream, 400, "application/json", error_body(e.what()));
    return;
  }
  const std::shared_ptr<Job> job = queue_.try_submit(std::move(job_request));
  if (job == nullptr) {
    // The backpressure signal: the bounded queue is full (or the server is
    // shutting down); clients should retry later. Retry-After gives
    // well-behaved clients (http_request_retry honors it) the pacing hint.
    metrics_.add("jobs_rejected_busy");
    write_response(stream, 503, "application/json",
                   error_body("job queue full, retry later"),
                   {{"Retry-After", "1"}});
    return;
  }
  metrics_.add("jobs_submitted");
  metrics_.set_gauge("jobs_queued", static_cast<double>(queue_.queued()));
  const auto body = support::Json::object()
                        .set("job", job->id())
                        .set("kind", std::string(to_string(kind)))
                        .set("state", std::string(to_string(job->state())));
  write_response(stream, 202, "application/json", body.dump() + "\n");
}

void Server::handle_job_get(support::TcpStream& stream,
                            const HttpRequest& request) {
  const std::string id_text = request.path.substr(6);  // after "/jobs/"
  std::uint64_t id = 0;
  try {
    id = std::stoull(id_text);
  } catch (const std::exception&) {
    write_response(stream, 400, "application/json",
                   error_body("bad job id '" + id_text + "'"));
    return;
  }
  const std::shared_ptr<Job> job = queue_.find(id);
  if (job == nullptr) {
    write_response(stream, 404, "application/json",
                   error_body("no job " + id_text));
    return;
  }

  if (request.query_value("wait", "1") == "0") {
    const JobState state = job->state();
    const JobProgress prog = job->progress();
    auto body = support::Json::object()
                    .set("job", job->id())
                    .set("kind", std::string(to_string(job->request().kind)))
                    .set("state", std::string(to_string(state)))
                    .set("lines",
                         static_cast<std::uint64_t>(job->num_lines()))
                    .set("trials_done", prog.trials_done)
                    .set("rounds_done", prog.rounds_done);
    // Pace fields appear as they become defined: total once the worker has
    // sized the job, rate once live trials exist, ETA only mid-run.
    if (prog.trials_total > 0) body.set("trials_total", prog.trials_total);
    if (prog.elapsed_seconds > 0 && prog.rounds_done > 0) {
      body.set("rounds_per_sec",
               static_cast<double>(prog.rounds_done) / prog.elapsed_seconds);
    }
    if (state == JobState::kRunning && prog.trials_total > prog.trials_done &&
        prog.live_trials > 0 && prog.elapsed_seconds > 0) {
      // Remaining work at the live pace; manifest replays are excluded
      // from the denominator so a resumed sweep does not look faster than
      // the simulation actually runs.
      body.set("eta_seconds",
               prog.elapsed_seconds *
                   static_cast<double>(prog.trials_total - prog.trials_done) /
                   static_cast<double>(prog.live_trials));
    }
    if (state == JobState::kFailed) body.set("error", job->error());
    if (state == JobState::kCancelled) body.set("reason",
                                                job->cancel_reason());
    write_response(stream, 200, "application/json", body.dump() + "\n");
    return;
  }

  // Streaming follow: every result line as it lands, then the terminal
  // summary. `from=N` is the reconnect cursor — a client whose stream
  // dropped resumes at the first line it has not seen (follow_job_stream).
  std::size_t cursor = 0;
  try {
    cursor = std::stoull(request.query_value("from", "0"));
  } catch (const std::exception&) {
    write_response(stream, 400, "application/json",
                   error_body("bad from cursor '" +
                              request.query_value("from") + "'"));
    return;
  }
  ChunkedWriter writer(stream, 200, "application/x-ndjson");
  for (;;) {
    const std::vector<std::string> lines = job->wait_lines(cursor);
    for (const std::string& line : lines) writer.write(line + "\n");
    cursor += lines.size();
    if (job->settled() && lines.empty()) break;
  }
  // Every settled state ends the stream with exactly one summary line —
  // cancelled/deadline jobs included, so followers never hang on a job
  // that will produce no more output.
  switch (job->state()) {
    case JobState::kFailed:
      writer.write(support::Json::object()
                       .set("type", "summary")
                       .set("state", "failed")
                       .set("error", job->error())
                       .dump() +
                   "\n");
      break;
    case JobState::kCancelled:
      writer.write(support::Json::object()
                       .set("type", "summary")
                       .set("state", job->cancel_reason())
                       .dump() +
                   "\n");
      break;
    default:
      writer.write(job->summary() + "\n");
      break;
  }
  writer.finish();
}

void Server::handle_job_delete(support::TcpStream& stream,
                               const HttpRequest& request) {
  const std::string id_text = request.path.substr(6);  // after "/jobs/"
  std::uint64_t id = 0;
  try {
    id = std::stoull(id_text);
  } catch (const std::exception&) {
    write_response(stream, 400, "application/json",
                   error_body("bad job id '" + id_text + "'"));
    return;
  }
  const std::shared_ptr<Job> job = queue_.cancel(id);
  if (job == nullptr) {
    write_response(stream, 404, "application/json",
                   error_body("no job " + id_text));
    return;
  }
  metrics_.add("jobs_cancel_requests");
  metrics_.set_gauge("jobs_queued", static_cast<double>(queue_.queued()));
  // 202, not 200: a running job settles when its worker next polls the
  // token, so the state reported here may still be "running".
  auto body = support::Json::object()
                  .set("job", job->id())
                  .set("state", std::string(to_string(job->state())));
  const std::string reason = job->cancel_reason();
  if (!reason.empty()) body.set("reason", reason);
  write_response(stream, 202, "application/json", body.dump() + "\n");
}

void Server::handle_metrics(support::TcpStream& stream,
                            const HttpRequest& request) {
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_at_)
          .count();
  metrics_.set_gauge("uptime_seconds", uptime);
  metrics_.set_gauge("jobs_queued", static_cast<double>(queue_.queued()));
  metrics_.set_gauge("jobs_running",
                     static_cast<double>(jobs_running_.load()));
  if (uptime > 0) {
    metrics_.set_gauge("rounds_per_sec",
                       static_cast<double>(
                           metrics_.counter("sweep_rounds_total")) /
                           uptime);
  }
  // Kernel observability: active ISA (info), per-kernel dispatch counts
  // (absolute counters), and the enable gauge — refreshed per scrape so a
  // runtime set_simd_isa/enable flip shows up immediately.
  support::export_simd_metrics(metrics_);
  if (request.query_value("format") == "json") {
    write_response(stream, 200, "application/json",
                   metrics_.to_json().dump() + "\n");
  } else {
    write_response(stream, 200, "text/plain", metrics_.render_text());
  }
}

void Server::worker_loop() {
  // Per-worker warm pools: engine ThreadPools persist across every job
  // this worker runs. Per-worker (not shared) so two concurrent jobs never
  // interleave parallel_for barriers on one pool.
  api::WarmEnginePools pools;
  for (;;) {
    const std::shared_ptr<Job> job = queue_.pop();
    if (job == nullptr) return;  // shutdown
    job->mark_running();  // also arms the ?timeout_s= deadline
    ++jobs_running_;
    metrics_.set_gauge("jobs_queued", static_cast<double>(queue_.queued()));
    try {
      support::FaultInjector::instance().on_site("worker.execute");
      execute_job(*job, pools);
      metrics_.add("jobs_completed");
    } catch (const support::Cancelled& e) {
      // Cooperative cancellation/deadline is a terminal state of its own,
      // not a failure: the stream ends with the reason and this worker is
      // immediately free for the next job.
      job->cancel_terminal(e.reason());
      metrics_.add("jobs_cancelled");
    } catch (const std::exception& e) {
      job->fail(e.what());
      metrics_.add("jobs_failed");
    }
    --jobs_running_;
  }
}

void Server::execute_job(Job& job, api::WarmEnginePools& pools) {
  if (job.request().kind == JobKind::kScenario) {
    execute_scenario_job(job, pools);
  } else {
    execute_sweep_job(job, pools);
  }
}

void Server::execute_scenario_job(Job& job, api::WarmEnginePools& pools) {
  const api::ScenarioSpec spec =
      api::ScenarioSpec::from_json_text(job.request().spec_text);
  api::Simulation sim = api::Simulation::from_spec(spec, &pools);
  sim.set_cancel_token(&job.cancel_token());
  metrics_.add("engine_" + std::string(api::to_string(sim.engine_kind())) +
               "_jobs");
  const std::size_t reps = job.request().replications;
  job.set_trials_total(reps);

  if (reps <= 1) {
    const core::RunResult result = sim.run_seeded(spec.seed);
    if (result.stopped != core::StopReason::kNone) {
      // Uniform with the sweep path: surface the interruption as Cancelled
      // so worker_loop settles the job with the token's reason, and emit
      // nothing — a partial run is not a result.
      throw support::Cancelled(std::string(core::to_string(result.stopped)));
    }
    job.record_trial(result.rounds, /*replayed=*/false);
    metrics_.add("sweep_trials_done");
    metrics_.add("sweep_rounds_total", result.rounds);
    auto line = support::Json::object().set("type", "result").set(
        "result", run_result_json(spec, result));
    job.append_line(line.dump());
    job.finish(support::Json::object()
                   .set("type", "summary")
                   .set("state", "done")
                   .set("result", run_result_json(spec, result))
                   .dump());
    return;
  }

  JobLineSink lines(job);
  exp::MetricsTrialSink trial_metrics(metrics_);
  const exp::PointStats stats =
      sim.run_many(reps, options_.sweep_threads, {}, {&lines, &trial_metrics});
  job.finish(support::Json::object()
                 .set("type", "summary")
                 .set("state", "done")
                 .set("stats", point_stats_json(stats))
                 .dump());
}

std::string Server::job_manifest_path(const Job& job) const {
  if (options_.state_dir.empty() || job.request().name.empty()) return {};
  return (std::filesystem::path(options_.state_dir) /
          (sanitize_name(job.request().name) + ".jsonl"))
      .string();
}

void Server::execute_sweep_job(Job& job, api::WarmEnginePools& pools) {
  const api::SweepSpec spec =
      api::SweepSpec::from_json_text(job.request().spec_text);
  api::SweepRunner runner(spec, &pools);
  runner.set_cancel_token(&job.cancel_token());
  const exp::ShardPlan shard{job.request().shard_index,
                             job.request().shard_count};

  // Size the job up front so status snapshots can report an ETA: this
  // shard runs (owned grid points) × replications trials. Manifest replays
  // count toward trials_done as they stream back, so a resumed job shows
  // its true completion fraction immediately.
  const std::vector<std::string> labels = runner.labels();
  std::uint64_t owned_points = 0;
  for (const std::string& label : labels) owned_points += shard.owns(label);
  job.set_trials_total(owned_points * spec.replications);

  JobLineSink lines(job);
  exp::MetricsTrialSink trial_metrics(metrics_);
  EngineMetricsSink engine_metrics(metrics_, runner.engine_kinds());
  std::vector<exp::ResultSink*> sinks{&lines, &trial_metrics,
                                      &engine_metrics};

  // Crash recovery for named jobs: completed trials live in a per-job
  // manifest under state_dir, flushed per trial. A daemon killed mid-job
  // and restarted replays the manifest prefix on resubmission of the same
  // name — resumed aggregates are byte-identical (exp::SweepResume).
  const std::string manifest_path = job_manifest_path(job);
  exp::SweepResume resume;
  std::unique_ptr<exp::JsonlSink> manifest;
  if (!manifest_path.empty()) {
    resume = exp::SweepResume::from_jsonl(manifest_path);
    // durable=true: fsync per line. Once a trial is in the manifest, even a
    // power cut cannot lose it — the whole point of crash recovery.
    manifest = std::make_unique<exp::JsonlSink>(manifest_path,
                                                /*append=*/true,
                                                /*durable=*/true);
    sinks.push_back(manifest.get());
  }

  const std::vector<exp::PointStats> stats =
      runner.run(options_.sweep_threads, sinks,
                 resume.completed.empty() ? nullptr : &resume,
                 shard.count > 1 ? &shard : nullptr);

  auto summary = support::Json::object()
                     .set("type", "summary")
                     .set("state", "done")
                     .set("points", static_cast<std::uint64_t>(stats.size()))
                     .set("replications",
                          static_cast<std::uint64_t>(spec.replications))
                     .set("aggregate_csv",
                          exp::point_stats_csv_text(labels, stats));
  if (shard.count > 1) {
    summary.set("shard", std::to_string(shard.index) + "/" +
                             std::to_string(shard.count));
  }
  if (!manifest_path.empty()) summary.set("manifest", manifest_path);
  job.finish(summary.dump());
}

}  // namespace consensus::serve
