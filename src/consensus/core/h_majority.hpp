// h-Majority (§2.5): each vertex samples h uniformly random neighbours and
// adopts the most frequent opinion among the h samples, breaking ties
// uniformly at random. h = 3 is distributionally equivalent to the paper's
// 3-Majority rule on any vertex-transitive sampling model; h = 1 is the
// voter model.
//
// No closed-form O(k) counting transition exists for h >= 4, but the
// one-round law of a single vertex IS computable by summing over the
// C(h+a-1, h) histograms of the h samples across the a alive opinions.
// The law is computed ENTIRELY in compact alive space
// (`outcome_distribution_alive`): O(C(h+a-1, h)·a) arithmetic touching no
// extinct slot; the dense `outcome_distribution` is the same kernel
// scattered back to k slots. The rule ignores the holder's opinion, so the
// counting engine collapses the whole round into one Multinomial(n, ·)
// draw.
//
// Above `kParallelThreshold` histograms the enumeration is split into
// `kShards` contiguous colex-rank ranges (`for_each_composition_parallel`)
// with per-shard accumulators reduced in shard order — the LAW is
// bit-identical for every pool size. The pool additionally scales the
// enumeration budgets (a W-worker pool affords W× the serial
// histogram/work budget before declining to the per-vertex fallback),
// and budget-boundary configurations therefore take a different — equally
// exact — sampling path with a different RNG consumption: treat
// `engine_threads` as part of the scenario when trajectory-level
// reproducibility matters (and avoid engine_threads = 0, which sizes the
// pool per machine).
#pragma once

#include "consensus/core/protocol.hpp"

#include <string>

namespace consensus::core {

class HMajority final : public Protocol {
 public:
  /// Above this many sample histograms (per pool worker) the batched law
  /// costs more than the per-vertex fallback for realistic n;
  /// `outcome_distribution` declines.
  static constexpr std::uint64_t kCompositionBudget = 2'000'000;
  /// Cap on histograms × alive opinions per pool worker (each histogram
  /// costs one O(a) scan): guards the small-h/huge-a corner where the
  /// histogram count alone looks affordable.
  static constexpr std::uint64_t kWorkBudget = 40'000'000;
  /// Below this many histograms the plain serial enumeration wins (shard
  /// setup would dominate); at or above it the sharded path runs — inline
  /// without a pool, on the pool otherwise, same result bit-for-bit.
  static constexpr std::uint64_t kParallelThreshold = 32'768;
  /// Fixed shard count for the partitioned enumeration. Deliberately NOT a
  /// function of the pool width: shard boundaries and the reduction order
  /// must be identical for every thread count.
  static constexpr std::size_t kShards = 64;

  explicit HMajority(unsigned h);

  std::string_view name() const noexcept override { return name_; }
  unsigned samples_per_update() const noexcept override { return h_; }

  Opinion update(Opinion current, OpinionSampler& neighbors,
                 support::Rng& rng) const override;

  bool outcome_distribution(Opinion current, const Configuration& cur,
                            std::vector<double>& out) const override;

  bool outcome_distribution_alive(Opinion current, const Configuration& cur,
                                  std::vector<double>& out) const override;

  bool outcome_depends_on_current() const noexcept override { return false; }

  void set_thread_pool(support::ThreadPool* pool) noexcept override {
    pool_ = pool;
  }

  /// Budget scale factor: pool workers clamped to kShards (1 without a
  /// pool) — the enumeration cannot spread wider than the shard count.
  std::uint64_t budget_workers() const noexcept;

 private:
  /// Shared kernel: integrates the one-round law over the histograms of
  /// the h samples on the alive opinions, writing the COMPACT law
  /// (out[i] = P(next == cur.alive()[i])) into `out`. Returns false when
  /// over budget.
  bool compute_alive_law(const Configuration& cur,
                         std::vector<double>& out) const;

  unsigned h_;
  std::string name_;
  support::ThreadPool* pool_ = nullptr;
};

}  // namespace consensus::core
