// h-Majority (§2.5): each vertex samples h uniformly random neighbours and
// adopts the most frequent opinion among the h samples, breaking ties
// uniformly at random. h = 3 is distributionally equivalent to the paper's
// 3-Majority rule on any vertex-transitive sampling model; h = 1 is the
// voter model.
//
// No closed-form O(k) counting transition exists for h >= 4, but the
// one-round law of a single vertex IS computable by summing over the
// C(h+a-1, h) histograms of the h samples across the a alive opinions
// (`outcome_distribution`). The rule ignores the holder's opinion, so the
// counting engine collapses the whole round into one Multinomial(n, ·)
// draw: O(C(h+a-1, h)·a) per round, independent of n. When the histogram
// count exceeds kCompositionBudget (huge k), we fall back to the generic
// per-vertex path: exact, O(n·h) per round.
#pragma once

#include "consensus/core/protocol.hpp"

#include <string>

namespace consensus::core {

class HMajority final : public Protocol {
 public:
  /// Above this many sample histograms the batched law costs more than the
  /// per-vertex fallback for realistic n; `outcome_distribution` declines.
  static constexpr std::uint64_t kCompositionBudget = 2'000'000;
  /// Cap on histograms × alive opinions (each histogram costs one O(a)
  /// scan): guards the small-h/huge-k corner where the histogram count
  /// alone looks affordable.
  static constexpr std::uint64_t kWorkBudget = 20'000'000;

  explicit HMajority(unsigned h);

  std::string_view name() const noexcept override { return name_; }
  unsigned samples_per_update() const noexcept override { return h_; }

  Opinion update(Opinion current, OpinionSampler& neighbors,
                 support::Rng& rng) const override;

  bool outcome_distribution(Opinion current, const Configuration& cur,
                            std::vector<double>& out) const override;

  bool outcome_depends_on_current() const noexcept override { return false; }

 private:
  unsigned h_;
  std::string name_;
};

}  // namespace consensus::core
