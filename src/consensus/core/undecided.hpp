// Undecided-State Dynamics (USD), the §2.5 open-question protocol.
//
// Convention: the configuration carries k+1 slots, the LAST slot being the
// undecided state ⊥ (use `with_undecided_slot` to extend a k-opinion start).
// Synchronous multi-opinion USD update (each vertex samples ONE uniformly
// random neighbour u):
//   - undecided vertex: adopts opn(u) (possibly ⊥);
//   - decided vertex with opinion c: keeps c if opn(u) ∈ {c, ⊥},
//     otherwise becomes undecided.
//
// Exact O(k) counting transition: neighbour picks are i.i.d. ~ α across
// vertices, so
//   outflow of ⊥:        I ~ Multinomial(count(⊥), α)  (I_⊥ stays ⊥),
//   decided c → ⊥:       L_c ~ Bin(count(c), 1 − α(⊥) − α(c)),
//   next(c) = count(c) − L_c + I_c;   next(⊥) = I_⊥ + Σ_c L_c.
//
// Consensus: one decided opinion holds all n vertices (⊥ never "wins").
#pragma once

#include "consensus/core/fused.hpp"

namespace consensus::core {

class Undecided final : public FusedProtocol<Undecided> {
 public:
  std::string_view name() const noexcept override { return "undecided"; }
  unsigned samples_per_update() const noexcept override { return 1; }

  /// Non-virtual rule body shared by the virtual entry point and the fused
  /// engine kernels (see the Draws concept in protocol.hpp). The k+1-slot
  /// convention reads the ⊥ index off the draw source's num_slots().
  template <typename Draws>
  Opinion update_from_draws(Opinion current, Draws& draws,
                            support::Rng& rng) const {
    const Opinion u = draws.draw(rng);
    const auto bot = static_cast<Opinion>(draws.num_slots() - 1);
    if (current == bot) return u;
    if (u == bot || u == current) return current;
    return bot;
  }

  Opinion update(Opinion current, OpinionSampler& neighbors,
                 support::Rng& rng) const override;

  bool step_counts(const Configuration& cur, std::vector<std::uint64_t>& next,
                   support::Rng& rng) const override;

  /// Mixture law under the k+1-slot convention (⊥ = last sampling slot):
  /// an undecided holder adopts the draw (out = q); a decided holder keeps
  /// with q_⊥ + q_c and becomes undecided with the remaining mass.
  bool outcome_distribution_mixture(Opinion current,
                                    std::span<const double> sampling,
                                    std::uint64_t n_hint,
                                    std::vector<double>& out) const override;

  bool is_consensus(const Configuration& config) const override;
  Opinion winner(const Configuration& config) const override;

  /// The index of the undecided slot under the k+1-slot convention.
  static Opinion undecided_slot(const Configuration& config) {
    return static_cast<Opinion>(config.num_opinions() - 1);
  }
};

/// Appends an empty undecided slot to a decided-only start configuration.
Configuration with_undecided_slot(const Configuration& config);

}  // namespace consensus::core
