// Fixed-size thread pool with a parallel_for convenience. The experiment
// harness runs independent seeded replications on it; results are written
// to pre-sized slots, so no synchronisation is needed beyond the pool's own.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace consensus::support {

class ThreadPool {
 public:
  /// threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// True when the calling thread is one of this pool's workers. Used by
  /// parallel_for to detect re-entry: a worker blocking on wait_idle would
  /// wait for its own task and deadlock, so nested calls serialize instead.
  bool on_worker_thread() const noexcept;

  /// Enqueues a task. Tasks must not throw; exceptions terminate (tasks in
  /// this library report failures through their result slots instead).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::vector<std::thread::id> worker_ids_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Runs body(i) for i in [0, count) across the pool, blocking until done.
/// Schedules one task per worker (shared atomic index), so it is cheap to
/// call every round. Calling it from inside a task running on the SAME pool
/// (nested parallelism) is detected and runs the loop serially inline — the
/// blocking wait would otherwise include the caller's own task and deadlock.
/// For real nested parallelism give inner work its own pool (the api layer
/// keeps a dedicated engine pool separate from the sweep harness's).
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body);

}  // namespace consensus::support
