#include "consensus/core/agent_engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "consensus/core/fused.hpp"
#include "consensus/core/init.hpp"

namespace consensus::core {

namespace {

// CountSpaceSampler and NeighborSampler moved to core/samplers.hpp: the
// open fused registry's thunks (core/fused.hpp) name them as concrete
// types. CompleteSelfLoopSampler stays private — the mean-field opt-out
// path it serves is pinned to the virtual reference loop and never fuses.

/// K_n with self-loops, per-vertex representation: a random neighbour is a
/// uniformly random vertex — the vertex identity is irrelevant, so
/// set_vertex is a no-op.
class CompleteSelfLoopSampler final : public OpinionSampler {
 public:
  CompleteSelfLoopSampler(std::span<const Opinion> opinions,
                          std::size_t num_slots) noexcept
      : opinions_(opinions.data()), n_(opinions.size()), slots_(num_slots) {}

  void set_vertex(graph::Vertex) noexcept {}

  Opinion draw(support::Rng& rng) const noexcept {
    return opinions_[rng.uniform_below(n_)];
  }
  void draw_many(support::Rng& rng, Opinion* out, unsigned count) const {
    for (unsigned i = 0; i < count; ++i) out[i] = draw(rng);
  }

  Opinion sample(support::Rng& rng) override { return draw(rng); }

  std::size_t num_slots() const noexcept override { return slots_; }

 private:
  const Opinion* opinions_;
  std::uint64_t n_;
  std::size_t slots_;
};

}  // namespace

AgentEngine::AgentEngine(const Protocol& protocol, const graph::Graph& graph,
                         std::vector<Opinion> opinions, std::size_t num_slots)
    : protocol_(&protocol),
      graph_(&graph),
      num_slots_(num_slots),
      opinions_(opinions.data(), opinions.size()) {
  if (opinions_.size() != graph.num_vertices())
    throw std::invalid_argument("AgentEngine: one opinion per vertex");
  if (num_slots_ == 0)
    throw std::invalid_argument("AgentEngine: num_slots must be positive");
  if (!graph.min_degree_positive())
    throw std::invalid_argument("AgentEngine: graph has isolated vertices");
  counts_.assign(num_slots_, 0);
  for (Opinion o : opinions_) {
    if (o >= num_slots_)
      throw std::invalid_argument("AgentEngine: opinion out of range");
    ++counts_[o];
  }
  // Allocated but NOT written: every element is stored before it is read
  // (each vertex writes next_opinions_[v] during its round), so leaving the
  // pages untouched lets the first real round — or a rehome — place them.
  next_opinions_ = support::FirstTouchArray<Opinion>(opinions_.size());
}

AgentEngine::AgentEngine(const Protocol& protocol, const graph::Graph& graph,
                         const Configuration& initial)
    : AgentEngine(protocol, graph, assign_vertices(initial),
                  initial.num_opinions()) {
  if (initial.num_vertices() != graph.num_vertices())
    throw std::invalid_argument("AgentEngine: configuration size mismatch");
}

void AgentEngine::set_thread_pool(support::ThreadPool* pool) {
  pool_ = pool;
  // First-touch placement: with a real pool attached, rebuild both vertex
  // buffers so each worker's chunk stripes live in pages that worker
  // touched first. kChunkVertices matches step()'s striping, so placement
  // and processing agree. Cheap (one parallel copy) and done once per
  // attach, not per round.
  if (pool != nullptr && pool->thread_count() > 1) {
    opinions_.rehome(*pool, kChunkVertices);
    next_opinions_.rehome(*pool, kChunkVertices);
  }
}

void AgentEngine::set_frozen(std::vector<bool> frozen) {
  if (frozen.size() != opinions_.size())
    throw std::invalid_argument("set_frozen: one flag per vertex");
  frozen_ = std::move(frozen);
  frozen_count_ = 0;
  for (bool f : frozen_) frozen_count_ += f;
}

std::uint64_t AgentEngine::freeze_holders(Opinion opinion,
                                          std::uint64_t count) {
  if (frozen_.empty()) frozen_.assign(opinions_.size(), false);
  std::uint64_t frozen_now = 0;
  for (std::size_t v = 0; v < opinions_.size() && frozen_now < count; ++v) {
    if (opinions_[v] == opinion && !frozen_[v]) {
      frozen_[v] = true;
      ++frozen_now;
    }
  }
  frozen_count_ += frozen_now;
  return frozen_now;
}

template <typename Sampler>
void AgentEngine::step_chunk(Sampler& sampler, std::uint64_t begin,
                             std::uint64_t end, support::Rng& rng,
                             std::uint64_t* local_counts) {
  const bool has_zealots = !frozen_.empty();
  for (std::uint64_t v = begin; v < end; ++v) {
    if (has_zealots && frozen_[v]) {
      next_opinions_[v] = opinions_[v];
      ++local_counts[opinions_[v]];
      continue;
    }
    sampler.set_vertex(static_cast<graph::Vertex>(v));
    const Opinion next = protocol_->update(opinions_[v], sampler, rng);
    next_opinions_[v] = next;
    ++local_counts[next];
  }
}

template <typename Sampler>
void AgentEngine::dispatch_chunk(Sampler& sampler, std::uint64_t begin,
                                 std::uint64_t end, support::Rng& rng,
                                 std::uint64_t* local_counts) {
  // One virtual call per CHUNK picks the protocol's fused table; the thunk
  // it selects is step_chunk's loop with both inner calls statically bound
  // (update_from_draws draws exactly the stream update() would, so fused
  // and virtual execution of one sampler are bit-identical).
  if (const FusedOps* ops = protocol_->fused_visitor()) {
    const AgentChunkView chunk{opinions_.data(),
                               next_opinions_.data(),
                               frozen_.empty() ? nullptr : &frozen_,
                               begin,
                               end,
                               local_counts};
    agent_chunk_entry(*ops, sampler)(*protocol_, chunk, sampler, rng);
    return;
  }
  step_chunk(sampler, begin, end, rng, local_counts);
}

void AgentEngine::process_chunk(std::size_t chunk, std::uint64_t master,
                                std::uint64_t* local_counts) {
  const std::uint64_t n = opinions_.size();
  const std::uint64_t begin = chunk * kChunkVertices;
  const std::uint64_t end = std::min(n, begin + kChunkVertices);
  support::Rng rng(support::derive_seed(master, chunk));
  if (mean_field_active_) {
    CountSpaceSampler sampler(round_alias_, num_slots_);
    dispatch_chunk(sampler, begin, end, rng, local_counts);
  } else if (graph_->is_complete_with_self_loops()) {
    // Mean-field opt-out: the legacy per-vertex dense path, kept on the
    // virtual reference loop so opted-out trajectories reproduce earlier
    // releases bit for bit (and benches have a true baseline column).
    CompleteSelfLoopSampler sampler(opinions(), num_slots_);
    step_chunk(sampler, begin, end, rng, local_counts);
  } else {
    NeighborSampler sampler(*graph_, opinions(), num_slots_);
    dispatch_chunk(sampler, begin, end, rng, local_counts);
  }
}

void AgentEngine::step(support::Rng& rng) {
  const std::uint64_t n = opinions_.size();
  // Mean-field fast path: one alias table over the round-start counts
  // serves every neighbour draw this round (all vertices observe the
  // round-(t−1) state, so one table is exact for the whole round). The
  // sync is incremental: one O(k) compare pass against last round's
  // counts, then a Vose rebuild over the alive support only — and no
  // rebuild at all when the counts did not move.
  mean_field_active_ = mean_field_ && graph_->mean_field_sampling();
  if (mean_field_active_) {
    round_alias_.sync(counts_);
  }
  // One draw regardless of n or thread count: the caller's stream advances
  // identically however the round is executed.
  const std::uint64_t master = support::derive_seed(rng(), round_);
  const std::size_t num_chunks =
      static_cast<std::size_t>((n + kChunkVertices - 1) / kChunkVertices);
  // One count slab per *worker*, not per chunk, so memory stays
  // O(threads · k) even when k ≈ n. The stride is padded to a cache line
  // so two workers' hot increments never share one (false sharing).
  const std::size_t workers =
      (pool_ != nullptr && num_chunks > 1)
          ? std::min(pool_->thread_count(), num_chunks)
          : 1;
  constexpr std::size_t kLineWords = 64 / sizeof(std::uint64_t);
  const std::size_t stride =
      (num_slots_ + kLineWords - 1) / kLineWords * kLineWords;
  worker_counts_.assign(workers * stride, 0);

  if (workers > 1) {
    // Static chunk striping: worker w runs chunks w, w+W, w+2W, ... into
    // its own slab. Chunk RNG streams depend only on the chunk index and
    // the merge below is a plain sum, so trajectory AND counts are
    // identical for every worker count.
    support::parallel_for(*pool_, workers, [&](std::size_t w) {
      std::uint64_t* slab = worker_counts_.data() + w * stride;
      for (std::size_t c = w; c < num_chunks; c += workers) {
        process_chunk(c, master, slab);
      }
    });
  } else {
    for (std::size_t c = 0; c < num_chunks; ++c) {
      process_chunk(c, master, worker_counts_.data());
    }
  }

  opinions_.swap(next_opinions_);
  std::fill(counts_.begin(), counts_.end(), 0);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::uint64_t* slab = worker_counts_.data() + w * stride;
    for (std::size_t s = 0; s < num_slots_; ++s) counts_[s] += slab[s];
  }
  ++round_;
}

EngineState AgentEngine::capture_state() const {
  EngineState state;
  state.kind = "agent";
  state.progress = round_;
  state.opinions.assign(opinions_.begin(), opinions_.end());
  if (!frozen_.empty()) {
    state.frozen.resize(frozen_.size());
    for (std::size_t v = 0; v < frozen_.size(); ++v) {
      state.frozen[v] = frozen_[v] ? 1 : 0;
    }
  }
  return state;
}

void AgentEngine::restore_state(const EngineState& state) {
  if (state.kind != "agent") {
    throw std::invalid_argument(
        "AgentEngine::restore_state: state is for engine kind '" +
        state.kind + "'");
  }
  if (state.opinions.size() != opinions_.size()) {
    throw std::invalid_argument(
        "AgentEngine::restore_state: one opinion per vertex");
  }
  std::vector<std::uint64_t> counts(num_slots_, 0);
  for (Opinion o : state.opinions) {
    if (o >= num_slots_) {
      throw std::invalid_argument(
          "AgentEngine::restore_state: opinion out of range");
    }
    ++counts[o];
  }
  // Copy INTO the existing storage: restore must not disturb whatever
  // first-touch placement set_thread_pool established.
  std::copy(state.opinions.begin(), state.opinions.end(), opinions_.begin());
  counts_ = std::move(counts);
  if (state.frozen.empty()) {
    frozen_.clear();
    frozen_count_ = 0;
  } else {
    if (state.frozen.size() != opinions_.size()) {
      throw std::invalid_argument(
          "AgentEngine::restore_state: one zealot flag per vertex");
    }
    frozen_.assign(opinions_.size(), false);
    frozen_count_ = 0;
    for (std::size_t v = 0; v < state.frozen.size(); ++v) {
      if (state.frozen[v]) {
        frozen_[v] = true;
        ++frozen_count_;
      }
    }
  }
  round_ = state.progress;
}

bool AgentEngine::is_consensus() const {
  return protocol_->is_consensus(Configuration(counts_));
}

Opinion AgentEngine::winner() const {
  return protocol_->winner(Configuration(counts_));
}

}  // namespace consensus::core
