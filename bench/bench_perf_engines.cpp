// PERF — engine throughput microbenchmarks (google-benchmark).
//
// Not a paper artifact: quantifies the cost model that makes the
// reproduction feasible — the O(k)-per-round closed-form counting paths vs
// the O(n)-per-round per-vertex paths, and the O(log k) async tick.
#include <benchmark/benchmark.h>

#include "consensus/core/agent_engine.hpp"
#include "consensus/core/async_engine.hpp"
#include "consensus/core/counting_engine.hpp"
#include "consensus/core/init.hpp"

using namespace consensus;

namespace {

void BM_CountingStep3Majority(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto k = static_cast<std::uint32_t>(state.range(1));
  const auto protocol = core::make_protocol("3-majority");
  core::CountingEngine engine(*protocol, core::balanced(n, k));
  support::Rng rng(1);
  for (auto _ : state) {
    engine.step(rng);
    benchmark::DoNotOptimize(engine.config().gamma());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * k);
}

void BM_CountingStep2Choices(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto k = static_cast<std::uint32_t>(state.range(1));
  const auto protocol = core::make_protocol("2-choices");
  core::CountingEngine engine(*protocol, core::balanced(n, k));
  support::Rng rng(2);
  for (auto _ : state) {
    engine.step(rng);
    benchmark::DoNotOptimize(engine.config().gamma());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * k);
}

void BM_CountingStepGenericHMajority(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto k = static_cast<std::uint32_t>(state.range(1));
  const auto protocol = core::make_protocol("h-majority:5");
  core::CountingEngine engine(*protocol, core::balanced(n, k));
  support::Rng rng(3);
  for (auto _ : state) {
    engine.step(rng);
    benchmark::DoNotOptimize(engine.config().gamma());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}

void BM_AgentStepCompleteGraph(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto k = static_cast<std::uint32_t>(state.range(1));
  const auto protocol = core::make_protocol("3-majority");
  const auto g = graph::Graph::complete_with_self_loops(n);
  core::AgentEngine engine(*protocol, g, core::balanced(n, k));
  support::Rng rng(4);
  for (auto _ : state) {
    engine.step(rng);
    benchmark::DoNotOptimize(engine.round());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}

void BM_AsyncTick(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto k = static_cast<std::uint32_t>(state.range(1));
  const auto protocol = core::make_protocol("3-majority");
  core::AsyncEngine engine(*protocol, core::balanced(n, k));
  support::Rng rng(5);
  for (auto _ : state) {
    engine.tick(rng);
    benchmark::DoNotOptimize(engine.ticks());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

}  // namespace

BENCHMARK(BM_CountingStep3Majority)
    ->Args({1 << 20, 16})
    ->Args({1 << 20, 1024})
    ->Args({1 << 20, 65536});
BENCHMARK(BM_CountingStep2Choices)
    ->Args({1 << 20, 16})
    ->Args({1 << 20, 1024})
    ->Args({1 << 20, 65536});
BENCHMARK(BM_CountingStepGenericHMajority)
    ->Args({1 << 14, 16})
    ->Args({1 << 16, 16});
BENCHMARK(BM_AgentStepCompleteGraph)
    ->Args({1 << 14, 16})
    ->Args({1 << 16, 16});
BENCHMARK(BM_AsyncTick)->Args({1 << 20, 16})->Args({1 << 20, 65536});

BENCHMARK_MAIN();
