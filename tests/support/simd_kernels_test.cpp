// support/simd_kernels contract tests: the AVX2 path and the scalar
// fallback must be BIT-IDENTICAL (both follow the fixed 4-lane-strided
// product order), the kernel must implement the h-majority histogram term
// (probability mass split uniformly over the argmax set), and flipping the
// runtime toggle must change throughput only — pinned end to end through
// HMajority's law.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "consensus/core/block_engine.hpp"
#include "consensus/core/degree_class_engine.hpp"
#include "consensus/core/h_majority.hpp"
#include "consensus/core/init.hpp"
#include "consensus/core/three_majority.hpp"
#include "consensus/graph/graph.hpp"
#include "consensus/support/metrics.hpp"
#include "consensus/support/rng.hpp"
#include "consensus/support/sampling.hpp"
#include "consensus/support/simd_kernels.hpp"
#include "consensus/support/thread_pool.hpp"

namespace consensus::support {
namespace {

/// Straightforward reference: sequential product, explicit argmax set.
void reference_term(const double* w, std::size_t stride,
                    const std::uint32_t* hist, std::size_t a,
                    double prefactor, std::vector<double>& acc) {
  double p = prefactor;
  std::uint32_t best = 0;
  for (std::size_t i = 0; i < a; ++i) {
    p *= w[i * stride + hist[i]];
    if (hist[i] > best) best = hist[i];
  }
  std::vector<std::size_t> tied;
  for (std::size_t i = 0; i < a; ++i) {
    if (hist[i] == best) tied.push_back(i);
  }
  for (std::size_t i : tied) {
    acc[i] += p / static_cast<double>(tied.size());
  }
}

struct RandomCase {
  std::vector<double> w;
  std::vector<std::uint32_t> hist;
  std::size_t a;
  unsigned h;
};

RandomCase make_case(Rng& rng, std::size_t a, unsigned h) {
  RandomCase c;
  c.a = a;
  c.h = h;
  c.w.resize(a * (h + 1));
  for (double& x : c.w) x = rng.uniform(0.01, 1.5);
  c.hist.assign(a, 0);
  // A random weak composition of h over a slots.
  for (unsigned s = 0; s < h; ++s) {
    ++c.hist[static_cast<std::size_t>(rng.uniform_below(a))];
  }
  return c;
}

TEST(SimdKernels, ScalarPathMatchesReferenceSemanticsAndTolerance) {
  Rng rng(1);
  for (const std::size_t a : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 13u, 16u, 33u}) {
    for (const unsigned h : {1u, 3u, 7u, 12u}) {
      const RandomCase c = make_case(rng, a, h);
      std::vector<double> acc_scalar(a, 0.0), acc_ref(a, 0.0);
      accumulate_histogram_term_scalar(c.w.data(), h + 1, c.hist.data(), a,
                                       2.5, acc_scalar.data());
      reference_term(c.w.data(), h + 1, c.hist.data(), a, 2.5, acc_ref);
      for (std::size_t i = 0; i < a; ++i) {
        // Same argmax/tie semantics exactly; product order differs from
        // the sequential reference only in rounding.
        if (acc_ref[i] == 0.0) {
          EXPECT_EQ(acc_scalar[i], 0.0) << "a=" << a << " h=" << h;
        } else {
          EXPECT_NEAR(acc_scalar[i] / acc_ref[i], 1.0, 1e-12)
              << "a=" << a << " h=" << h << " slot " << i;
        }
      }
    }
  }
}

TEST(SimdKernels, VectorAndScalarPathsAreBitIdentical) {
  if (!simd_kernels_available()) {
    GTEST_SKIP() << "no AVX2 at runtime: both paths are the scalar code";
  }
  Rng rng(2);
  for (const std::size_t a : {1u, 4u, 6u, 8u, 15u, 16u, 50u, 129u}) {
    for (const unsigned h : {1u, 2u, 5u, 9u, 15u}) {
      const RandomCase c = make_case(rng, a, h);
      std::vector<double> acc_simd(a, 0.0), acc_scalar(a, 0.0);
      set_simd_kernels_enabled(true);
      accumulate_histogram_term(c.w.data(), h + 1, c.hist.data(), a, 1.75,
                                acc_simd.data());
      set_simd_kernels_enabled(false);
      accumulate_histogram_term(c.w.data(), h + 1, c.hist.data(), a, 1.75,
                                acc_scalar.data());
      set_simd_kernels_enabled(true);
      for (std::size_t i = 0; i < a; ++i) {
        EXPECT_EQ(acc_simd[i], acc_scalar[i])
            << "a=" << a << " h=" << h << " slot " << i
            << " (bit-identity contract broken)";
      }
    }
  }
}

TEST(SimdKernels, PowWeightTableFoldsInverseFactorials) {
  const std::vector<double> alpha = {0.5, 0.25, 0.125};
  const unsigned h = 4;
  std::vector<double> inv_fact = {1.0, 1.0, 0.5, 1.0 / 6.0, 1.0 / 24.0};
  std::vector<double> w;
  build_pow_weight_table(alpha, h, inv_fact, w);
  ASSERT_EQ(w.size(), alpha.size() * (h + 1));
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    for (unsigned j = 0; j <= h; ++j) {
      EXPECT_NEAR(w[i * (h + 1) + j],
                  std::pow(alpha[i], j) * inv_fact[j], 1e-15)
          << i << "," << j;
    }
  }
}

TEST(SimdKernels, HMajorityLawBitIdenticalWithToggle) {
  // End to end through the protocol, covering the serial path, the
  // sharded path (histograms >= kParallelThreshold), and the ring-staged
  // enumeration the vector kernel runs behind.
  const core::Configuration small = core::balanced(10000, 10);  // serial
  const core::Configuration big = core::balanced(100000, 25);   // sharded
  for (const core::Configuration* cfg : {&small, &big}) {
    core::HMajority protocol(6);
    std::vector<double> law_simd, law_scalar;
    set_simd_kernels_enabled(true);
    ASSERT_TRUE(protocol.outcome_distribution_alive(0, *cfg, law_simd));
    set_simd_kernels_enabled(false);
    ASSERT_TRUE(protocol.outcome_distribution_alive(0, *cfg, law_scalar));
    set_simd_kernels_enabled(true);
    ASSERT_EQ(law_simd.size(), law_scalar.size());
    for (std::size_t i = 0; i < law_simd.size(); ++i) {
      EXPECT_EQ(law_simd[i], law_scalar[i]) << i;
    }
    double total = 0.0;
    for (double p : law_simd) total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(SimdKernels, HMajorityLawStillPoolInvariantWithSimd) {
  // The staged enumeration must preserve the bit-identical-across-thread-
  // counts guarantee of the sharded reduction.
  const core::Configuration big = core::balanced(100000, 25);
  core::HMajority serial(6);
  core::HMajority pooled(6);
  ThreadPool pool(8);
  pooled.set_thread_pool(&pool);
  std::vector<double> law_serial, law_pooled;
  ASSERT_TRUE(serial.outcome_distribution_alive(0, big, law_serial));
  ASSERT_TRUE(pooled.outcome_distribution_alive(0, big, law_pooled));
  ASSERT_EQ(law_serial.size(), law_pooled.size());
  for (std::size_t i = 0; i < law_serial.size(); ++i) {
    EXPECT_EQ(law_serial[i], law_pooled[i]) << i;
  }
}

// ---------- multi-ISA registry ----------

/// Restores the dispatch state (active lane + enabled toggle) a test found,
/// however the test leaves it — so a CONSENSUS_SIMD-pinned suite (the
/// scalar-forced CI job) stays pinned after these tests run.
class ScopedLaneState {
 public:
  ScopedLaneState()
      : isa_(active_simd_isa()), enabled_(simd_kernels_enabled()) {}
  ~ScopedLaneState() {
    set_simd_isa(to_string(isa_));  // re-enables; matches the entry lane
    set_simd_kernels_enabled(enabled_);
  }
  ScopedLaneState(const ScopedLaneState&) = delete;
  ScopedLaneState& operator=(const ScopedLaneState&) = delete;

 private:
  SimdIsa isa_;
  bool enabled_;
};

std::vector<SimdIsa> vector_lanes() {
  std::vector<SimdIsa> lanes;
  for (const SimdIsa isa :
       {SimdIsa::kAvx2, SimdIsa::kAvx512, SimdIsa::kNeon}) {
    if (simd_isa_supported(isa)) lanes.push_back(isa);
  }
  return lanes;
}

TEST(SimdRegistry, QueriesAreConsistent) {
  init_simd_kernels();
  EXPECT_TRUE(simd_isa_supported(SimdIsa::kScalar));
  EXPECT_TRUE(simd_isa_supported(best_simd_isa()));
  EXPECT_TRUE(simd_isa_supported(active_simd_isa()));
  EXPECT_EQ(simd_kernels_available(), best_simd_isa() != SimdIsa::kScalar);
#if defined(__x86_64__)
  EXPECT_FALSE(simd_isa_supported(SimdIsa::kNeon));
#elif defined(__aarch64__)
  EXPECT_FALSE(simd_isa_supported(SimdIsa::kAvx2));
  EXPECT_FALSE(simd_isa_supported(SimdIsa::kAvx512));
#endif
}

TEST(SimdRegistry, OverrideSemantics) {
  ScopedLaneState restore;
  // Unknown names are refused and change nothing.
  const SimdIsa before = active_simd_isa();
  EXPECT_FALSE(set_simd_isa("sse9"));
  EXPECT_FALSE(set_simd_isa(""));
  EXPECT_EQ(active_simd_isa(), before);
  // Lanes this build/CPU can't run are refused, state unchanged.
  for (const SimdIsa isa :
       {SimdIsa::kAvx2, SimdIsa::kAvx512, SimdIsa::kNeon}) {
    if (!simd_isa_supported(isa)) {
      EXPECT_FALSE(set_simd_isa(to_string(isa)));
      EXPECT_EQ(active_simd_isa(), before);
    }
  }
  // The scalar pin always takes (this is what the scalar-forced CI job
  // runs the whole suite under).
  EXPECT_TRUE(set_simd_isa("scalar"));
  EXPECT_EQ(active_simd_isa(), SimdIsa::kScalar);
  EXPECT_TRUE(simd_kernels_enabled());
  // Every supported vector lane pins by name.
  for (const SimdIsa isa : vector_lanes()) {
    EXPECT_TRUE(set_simd_isa(to_string(isa)));
    EXPECT_EQ(active_simd_isa(), isa);
  }
  // "off" disables the vector paths entirely.
  EXPECT_TRUE(set_simd_isa("off"));
  EXPECT_FALSE(simd_kernels_enabled());
  EXPECT_EQ(active_simd_isa(), SimdIsa::kScalar);
  // "auto" re-enables and returns to best-lane selection.
  EXPECT_TRUE(set_simd_isa("auto"));
  EXPECT_TRUE(simd_kernels_enabled());
  EXPECT_EQ(active_simd_isa(), best_simd_isa());
}

TEST(SimdRegistry, DispatchCountersAdvance) {
  const std::uint64_t acc0 =
      simd_dispatch_count(SimdKernel::kMixtureAccumulate);
  const std::uint64_t ss0 =
      simd_dispatch_count(SimdKernel::kMixtureSumSquares);
  const std::uint64_t mm0 =
      simd_dispatch_count(SimdKernel::kMixtureMajorityMap);
  double q[8] = {};
  const std::uint64_t counts[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  double out[8];
  mixture_accumulate(q, counts, 8, 0.125);
  const double gamma = mixture_sum_squares(q, 8);
  mixture_majority_map(q, 8, gamma, out);
  EXPECT_EQ(simd_dispatch_count(SimdKernel::kMixtureAccumulate), acc0 + 1);
  EXPECT_EQ(simd_dispatch_count(SimdKernel::kMixtureSumSquares), ss0 + 1);
  EXPECT_EQ(simd_dispatch_count(SimdKernel::kMixtureMajorityMap), mm0 + 1);
  // The histogram kernel's counter is caller-noted (once per law build).
  const std::uint64_t h0 = simd_dispatch_count(SimdKernel::kHistogramTerm);
  note_simd_dispatch(SimdKernel::kHistogramTerm, 3);
  EXPECT_EQ(simd_dispatch_count(SimdKernel::kHistogramTerm), h0 + 3);
}

TEST(SimdRegistry, MetricsExportPublishesRegistryState) {
  Metrics metrics;
  export_simd_metrics(metrics);
  EXPECT_EQ(metrics.info("simd_isa"),
            std::string(to_string(active_simd_isa())));
  EXPECT_EQ(metrics.gauge("simd_kernels_enabled"),
            simd_kernels_enabled() ? 1.0 : 0.0);
  EXPECT_EQ(metrics.counter("simd_dispatch_mixture_accumulate"),
            simd_dispatch_count(SimdKernel::kMixtureAccumulate));
  const std::string text = metrics.render_text();
  for (std::size_t i = 0; i < kNumSimdKernels; ++i) {
    const std::string name =
        "simd_dispatch_" +
        std::string(to_string(static_cast<SimdKernel>(i)));
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
}

// ---------- mixture kernels: per-lane bit identity ----------

TEST(SimdKernels, MixtureKernelsBitIdenticalOnEveryLane) {
  const auto lanes = vector_lanes();
  if (lanes.empty()) {
    GTEST_SKIP() << "scalar-only build/CPU: nothing to pit the mirror "
                    "against";
  }
  ScopedLaneState restore;
  Rng rng(3);
  for (const SimdIsa isa : lanes) {
    ASSERT_TRUE(set_simd_isa(to_string(isa)));
    // Every size through 257 (odd tails of every vector width), both an
    // aligned and a one-slot-shifted (unaligned) view, counts past 2^53
    // (the uint64→double rounding regime), and periodic denormal-range
    // coefficients (results ~1e-312 stay subnormal: FTZ must be off).
    for (std::size_t k = 0; k <= 257; ++k) {
      for (const std::size_t offset : {std::size_t{0}, std::size_t{1}}) {
        std::vector<double> q(k + offset);
        std::vector<std::uint64_t> counts(k + offset);
        for (double& x : q) x = rng.uniform(0.0, 1.0);
        for (std::uint64_t& c : counts) {
          c = rng.uniform_below(std::uint64_t{1} << 62);
        }
        if (k > 0) {
          q[offset] = 5e-310;                                // subnormal
          counts[offset + k - 1] = (std::uint64_t{1} << 53) + 1;  // rounds
        }
        const double coeff =
            (k % 3 == 0) ? 1e-312 : rng.uniform(0.0, 2.0);

        std::vector<double> acc_lane = q, acc_scalar = q;
        mixture_accumulate(acc_lane.data() + offset, counts.data() + offset,
                           k, coeff);
        mixture_accumulate_scalar(acc_scalar.data() + offset,
                                  counts.data() + offset, k, coeff);
        ASSERT_EQ(std::memcmp(acc_lane.data(), acc_scalar.data(),
                              acc_lane.size() * sizeof(double)),
                  0)
            << "mixture_accumulate " << to_string(isa) << " k=" << k
            << " offset=" << offset;

        const double ss_lane = mixture_sum_squares(q.data() + offset, k);
        const double ss_scalar =
            mixture_sum_squares_scalar(q.data() + offset, k);
        ASSERT_EQ(std::bit_cast<std::uint64_t>(ss_lane),
                  std::bit_cast<std::uint64_t>(ss_scalar))
            << "mixture_sum_squares " << to_string(isa) << " k=" << k
            << " offset=" << offset;

        std::vector<double> out_lane(k + offset, 0.0);
        std::vector<double> out_scalar(k + offset, 0.0);
        mixture_majority_map(q.data() + offset, k, ss_scalar,
                             out_lane.data() + offset);
        mixture_majority_map_scalar(q.data() + offset, k, ss_scalar,
                                    out_scalar.data() + offset);
        ASSERT_EQ(std::memcmp(out_lane.data(), out_scalar.data(),
                              out_lane.size() * sizeof(double)),
                  0)
            << "mixture_majority_map " << to_string(isa) << " k=" << k
            << " offset=" << offset;
      }
    }
  }
}

// ---------- end to end: count-space engine trajectories per lane ----------

std::vector<std::uint64_t> block_trajectory(const core::Protocol& protocol,
                                            int steps) {
  const core::Configuration total = core::balanced(6000, 8);
  const auto offsets = graph::sbm_block_offsets(6000, 4);
  Rng split_rng(77);
  auto blocks =
      core::BlockCountingEngine::split_shuffled(total, offsets, split_rng);
  auto weights = graph::sbm_block_weights(offsets, 0.5, 0.1);
  core::BlockCountingEngine engine(protocol, std::move(blocks),
                                   std::move(weights));
  Rng rng(123);
  std::vector<std::uint64_t> trajectory;
  for (int s = 0; s < steps; ++s) {
    engine.step(rng);
    for (std::size_t b = 0; b < engine.num_blocks(); ++b) {
      const auto counts = engine.block(b).counts();
      trajectory.insert(trajectory.end(), counts.begin(), counts.end());
    }
  }
  return trajectory;
}

std::vector<std::uint64_t> degree_trajectory(const core::Protocol& protocol,
                                             int steps) {
  const core::Configuration total = core::balanced(4000, 6);
  const std::vector<std::uint64_t> offsets = {0, 1000, 2000, 3000, 4000};
  Rng split_rng(7);
  auto classes =
      core::BlockCountingEngine::split_shuffled(total, offsets, split_rng);
  core::DegreeClassCountingEngine engine(protocol, std::move(classes),
                                         {1, 2, 4, 9});
  Rng rng(321);
  std::vector<std::uint64_t> trajectory;
  for (int s = 0; s < steps; ++s) {
    engine.step(rng);
    for (std::size_t c = 0; c < engine.num_classes(); ++c) {
      const auto counts = engine.degree_class(c).counts();
      trajectory.insert(trajectory.end(), counts.begin(), counts.end());
    }
  }
  return trajectory;
}

TEST(SimdKernels, BlockEngineTrajectoryIsLaneInvariant) {
  // The registry-override guarantee: a scalar-pinned run (CONSENSUS_SIMD=
  // scalar parses through the same set_simd_isa) reproduces every vector
  // lane's BlockCountingEngine trajectory bit for bit — same multinomial
  // draws, same RNG stream, because the mixing saxpy and the 3-majority
  // mixture-law assembly are bit-identical across lanes.
  if (!simd_kernels_available()) {
    GTEST_SKIP() << "scalar-only build/CPU: every lane IS the scalar lane";
  }
  ScopedLaneState restore;
  core::ThreeMajority protocol;
  ASSERT_TRUE(set_simd_isa("scalar"));
  const auto scalar_traj = block_trajectory(protocol, 25);
  for (const SimdIsa isa : vector_lanes()) {
    ASSERT_TRUE(set_simd_isa(to_string(isa)));
    EXPECT_EQ(block_trajectory(protocol, 25), scalar_traj)
        << "lane " << to_string(isa);
  }
}

TEST(SimdKernels, DegreeClassEngineTrajectoryIsLaneInvariant) {
  // Same pin through the degree-class engine and the h-majority law (the
  // histogram-term kernel), covering the other count-space engine shape.
  if (!simd_kernels_available()) {
    GTEST_SKIP() << "scalar-only build/CPU: every lane IS the scalar lane";
  }
  ScopedLaneState restore;
  core::HMajority protocol(3);
  ASSERT_TRUE(set_simd_isa("scalar"));
  const auto scalar_traj = degree_trajectory(protocol, 20);
  for (const SimdIsa isa : vector_lanes()) {
    ASSERT_TRUE(set_simd_isa(to_string(isa)));
    EXPECT_EQ(degree_trajectory(protocol, 20), scalar_traj)
        << "lane " << to_string(isa);
  }
}

}  // namespace
}  // namespace consensus::support
