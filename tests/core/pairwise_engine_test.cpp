#include "consensus/core/pairwise_engine.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "consensus/core/init.hpp"
#include "consensus/core/undecided.hpp"
#include "consensus/core/voter.hpp"
#include "consensus/support/stats.hpp"

namespace consensus::core {
namespace {

TEST(PairwiseEngine, RejectsMultiSampleProtocols) {
  const auto three = make_protocol("3-majority");
  EXPECT_THROW(PairwiseEngine(*three, balanced(10, 2)),
               std::invalid_argument);
  const auto two = make_protocol("2-choices");
  EXPECT_THROW(PairwiseEngine(*two, balanced(10, 2)), std::invalid_argument);
}

TEST(PairwiseEngine, RejectsSingleAgent) {
  Voter voter;
  EXPECT_THROW(PairwiseEngine(voter, Configuration({1})),
               std::invalid_argument);
}

TEST(PairwiseEngine, InteractionAccounting) {
  Voter voter;
  PairwiseEngine engine(voter, balanced(50, 5));
  support::Rng rng(1);
  engine.interact(rng);
  EXPECT_EQ(engine.interactions(), 1u);
  engine.step_round(rng);
  EXPECT_EQ(engine.interactions(), 51u);
  EXPECT_NEAR(engine.rounds_equivalent(), 51.0 / 50.0, 1e-12);
}

TEST(PairwiseEngine, ConservesAgents) {
  Undecided usd;
  PairwiseEngine engine(usd, with_undecided_slot(balanced(100, 4)));
  support::Rng rng(2);
  for (int i = 0; i < 5000; ++i) engine.interact(rng);
  const auto counts = engine.config().counts();
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0ull), 100u);
}

TEST(PairwiseEngine, VoterPopulationProtocolReachesConsensus) {
  Voter voter;
  PairwiseEngine engine(voter, balanced(100, 3));
  support::Rng rng(3);
  int rounds = 0;
  while (!engine.is_consensus() && rounds < 100000) {
    engine.step_round(rng);
    ++rounds;
  }
  EXPECT_TRUE(engine.is_consensus());
}

TEST(PairwiseEngine, UndecidedPopulationProtocolReachesConsensus) {
  // The classic [AAE07] approximate-majority setting: k = 2 plus ⊥.
  Undecided usd;
  PairwiseEngine engine(usd, with_undecided_slot(Configuration({60, 40})));
  support::Rng rng(4);
  int rounds = 0;
  while (!engine.is_consensus() && rounds < 100000) {
    engine.step_round(rng);
    ++rounds;
  }
  EXPECT_TRUE(engine.is_consensus());
  EXPECT_LT(engine.winner(), 2u);  // ⊥ never wins
}

TEST(PairwiseEngine, UndecidedMajorityUsuallyWins) {
  Undecided usd;
  support::Rng rng(5);
  int majority_wins = 0;
  constexpr int kTrials = 60;
  for (int t = 0; t < kTrials; ++t) {
    PairwiseEngine engine(usd,
                          with_undecided_slot(Configuration({300, 150})));
    while (!engine.is_consensus()) engine.step_round(rng);
    majority_wins += (engine.winner() == 0);
  }
  // 2:1 initial majority: [AAE07] says the initial majority wins w.h.p.
  EXPECT_GE(majority_wins, 55);
}

TEST(PairwiseEngine, ResponderExcludesInitiator) {
  // With two agents holding distinct opinions, the responder is always
  // the OTHER agent; under the voter rule the initiator adopts it, so the
  // first interaction must end in consensus.
  Voter voter;
  support::Rng rng(6);
  for (int t = 0; t < 50; ++t) {
    PairwiseEngine engine(voter, Configuration({1, 1}));
    engine.interact(rng);
    EXPECT_TRUE(engine.is_consensus());
  }
}

}  // namespace
}  // namespace consensus::core
