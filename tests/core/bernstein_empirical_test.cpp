// Empirical validation of the paper's concentration machinery:
// Lemma 4.2 states the one-step increments of α, δ, γ satisfy explicit
// (D, s)-Bernstein conditions — i.e. their MGFs are dominated by
// exp(λ²s/2 / (1 − |λ|D/3)). We estimate the MGFs by Monte-Carlo and check
// the domination across a λ grid. This is the engine room of the whole
// proof (Section 3.2/4.1), tested directly.
#include <gtest/gtest.h>

#include <cmath>

#include "consensus/core/counting_engine.hpp"
#include "consensus/core/init.hpp"
#include "consensus/core/theory.hpp"
#include "consensus/support/stats.hpp"

namespace consensus::core {
namespace {

using theory::Dynamics;

/// MC estimate of E[e^{λX}] with a standard-error estimate, where X values
/// are produced by `draw`.
struct MgfEstimate {
  double mean = 0.0;
  double sem = 0.0;
};

template <typename Draw>
MgfEstimate estimate_mgf(double lambda, int trials, Draw&& draw) {
  support::Welford w;
  for (int t = 0; t < trials; ++t) w.add(std::exp(lambda * draw()));
  return {w.mean(), w.sem()};
}

struct BernsteinCase {
  const char* protocol;
  Dynamics dynamics;
};

class BernsteinLemma42 : public ::testing::TestWithParam<BernsteinCase> {
 protected:
  static constexpr int kTrials = 40000;
  const Configuration start_{{500, 300, 150, 50}};
};

TEST_P(BernsteinLemma42, AlphaIncrementSatisfiesCondition) {
  // Lemma 4.2(i): α_t(i) − E[α_t(i)] is (1/n, s)-Bernstein with
  // s = α/n (3-Majority) or α(α+γ)/n (2-Choices).
  const auto& param = GetParam();
  const auto protocol = make_protocol(param.protocol);
  const auto n = start_.num_vertices();
  const double alpha0 = start_.alpha(0);
  const double gamma = start_.gamma();
  const double expected = theory::expected_alpha_next(alpha0, gamma);
  const double d_param = 1.0 / static_cast<double>(n);
  const double s_param =
      param.dynamics == Dynamics::kThreeMajority
          ? alpha0 / static_cast<double>(n)
          : alpha0 * (alpha0 + gamma) / static_cast<double>(n);

  support::Rng rng(0xbe57 + static_cast<int>(param.dynamics));
  // λ grid spanning both tails, staying well inside |λ|D < 3.
  for (double lambda : {-2000.0, -500.0, 500.0, 2000.0}) {
    ASSERT_LT(std::fabs(lambda) * d_param, 3.0);
    const auto mgf = estimate_mgf(lambda, kTrials, [&] {
      CountingEngine engine(*protocol, start_);
      engine.step(rng);
      return engine.config().alpha(0) - expected;
    });
    const double bound = theory::bernstein_mgf_bound(lambda, d_param, s_param);
    EXPECT_LE(mgf.mean - 5.0 * mgf.sem, bound)
        << param.protocol << " lambda=" << lambda << " mgf=" << mgf.mean
        << " bound=" << bound;
  }
}

TEST_P(BernsteinLemma42, BiasIncrementSatisfiesCondition) {
  // Lemma 4.2(ii): δ_t − E[δ_t] is (2/n, s)-Bernstein with
  // s = 2(α_i+α_j)/n (3-Majority) or (α_i+α_j)(α_i+α_j+γ)/n (2-Choices).
  const auto& param = GetParam();
  const auto protocol = make_protocol(param.protocol);
  const auto n = start_.num_vertices();
  const double ai = start_.alpha(0);
  const double aj = start_.alpha(1);
  const double gamma = start_.gamma();
  const double expected = theory::expected_bias_next(ai, aj, gamma);
  const double d_param = 2.0 / static_cast<double>(n);
  const double s_param =
      param.dynamics == Dynamics::kThreeMajority
          ? 2.0 * (ai + aj) / static_cast<double>(n)
          : (ai + aj) * (ai + aj + gamma) / static_cast<double>(n);

  support::Rng rng(0xbe58 + static_cast<int>(param.dynamics));
  for (double lambda : {-800.0, -200.0, 200.0, 800.0}) {
    ASSERT_LT(std::fabs(lambda) * d_param, 3.0);
    const auto mgf = estimate_mgf(lambda, kTrials, [&] {
      CountingEngine engine(*protocol, start_);
      engine.step(rng);
      return engine.config().bias(0, 1) - expected;
    });
    const double bound = theory::bernstein_mgf_bound(lambda, d_param, s_param);
    EXPECT_LE(mgf.mean - 5.0 * mgf.sem, bound)
        << param.protocol << " lambda=" << lambda;
  }
}

TEST_P(BernsteinLemma42, GammaDecrementSatisfiesOneSidedCondition) {
  // Lemma 4.2(iii): γ_{t-1} − γ_t is ONE-SIDED (2√γ/n, s)-Bernstein with
  // s = 4γ^1.5/n (3-Majority) or 8γ²/n (2-Choices); one-sided means the
  // bound holds for λ ≥ 0 only.
  const auto& param = GetParam();
  const auto protocol = make_protocol(param.protocol);
  const auto n = start_.num_vertices();
  const double gamma = start_.gamma();
  const double d_param = 2.0 * std::sqrt(gamma) / static_cast<double>(n);
  const double s_param =
      param.dynamics == Dynamics::kThreeMajority
          ? 4.0 * std::pow(gamma, 1.5) / static_cast<double>(n)
          : 8.0 * gamma * gamma / static_cast<double>(n);

  support::Rng rng(0xbe59 + static_cast<int>(param.dynamics));
  for (double lambda : {100.0, 400.0, 1200.0}) {
    ASSERT_LT(lambda * d_param, 3.0);
    const auto mgf = estimate_mgf(lambda, kTrials, [&] {
      CountingEngine engine(*protocol, start_);
      engine.step(rng);
      return gamma - engine.config().gamma();
    });
    const double bound = theory::bernstein_mgf_bound(lambda, d_param, s_param);
    EXPECT_LE(mgf.mean - 5.0 * mgf.sem, bound)
        << param.protocol << " lambda=" << lambda << " mgf=" << mgf.mean
        << " bound=" << bound;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Dynamics, BernsteinLemma42,
    ::testing::Values(BernsteinCase{"3-majority", Dynamics::kThreeMajority},
                      BernsteinCase{"2-choices", Dynamics::kTwoChoices}));

TEST(FreedmanEmpirical, GammaDropTailDominatedByBound) {
  // Corollary 3.8 applied as in Lemma 4.7: the probability that γ drops by
  // h below γ₀ within T rounds is at most exp(−h²/2 / (Ts + hD/3)), using
  // the Lemma 4.2(iii) parameters with the γ ≤ 2γ₀ cap (γ only drifts up,
  // so runs that exceed the cap are even further from dropping).
  const Configuration start({500, 300, 150, 50});
  const auto protocol = make_protocol("3-majority");
  const auto n = start.num_vertices();
  const double gamma0 = start.gamma();
  const double cap = 2.0 * gamma0;
  const double d_param = 2.0 * std::sqrt(cap) / static_cast<double>(n);
  const double s_param = 4.0 * std::pow(cap, 1.5) / static_cast<double>(n);
  const std::uint64_t T = 20;
  const double h = 0.02;

  support::Rng rng(0xf4eed);
  constexpr int kTrials = 20000;
  int drops = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    CountingEngine engine(*protocol, start);
    for (std::uint64_t t = 0; t < T; ++t) {
      engine.step(rng);
      if (engine.config().gamma() <= gamma0 - h) {
        ++drops;
        break;
      }
    }
  }
  const double empirical =
      static_cast<double>(drops) / static_cast<double>(kTrials);
  const double bound =
      theory::freedman_tail(h, static_cast<double>(T), s_param, d_param);
  // One-sided binomial slack on the empirical estimate.
  const double slack =
      4.0 * std::sqrt(std::max(empirical, 1e-6) / kTrials);
  EXPECT_LE(empirical - slack, bound)
      << "empirical " << empirical << " vs Freedman bound " << bound;
  // The bound must also be non-vacuous at these parameters.
  EXPECT_LT(bound, 1.0);
}

TEST(FreedmanEmpirical, SubmartingaleRarelyDropsAtAll) {
  // Lemma 4.7's qualitative content at bench scale: over 200 rounds from a
  // mid-γ start, γ (a submartingale) ends below γ₀ − 0.05 in at most a
  // tiny fraction of runs.
  const auto protocol = make_protocol("3-majority");
  const Configuration start({400, 350, 250});
  const double gamma0 = start.gamma();
  support::Rng rng(0xf4ee2);
  int below = 0;
  constexpr int kTrials = 500;
  for (int trial = 0; trial < kTrials; ++trial) {
    CountingEngine engine(*protocol, start);
    for (int t = 0; t < 200 && !engine.is_consensus(); ++t) engine.step(rng);
    below += engine.config().gamma() < gamma0 - 0.05;
  }
  EXPECT_LE(below, 5) << below << "/" << kTrials;
}

}  // namespace
}  // namespace consensus::core
