// MixtureSampler: OpinionSampler over a prebuilt alias table of a mixture
// law q — the per-vertex fallback's neighbour source for the count-space
// engines (a random neighbour holds opinion j with probability q(j)).
// Shared by BlockCountingEngine and DegreeClassCountingEngine.
#pragma once

#include "consensus/core/protocol.hpp"
#include "consensus/support/sampling.hpp"

namespace consensus::core {

class MixtureSampler final : public OpinionSampler {
 public:
  MixtureSampler(const support::AliasTable& table, std::size_t slots) noexcept
      : table_(&table), slots_(slots) {}

  Opinion sample(support::Rng& rng) override {
    return static_cast<Opinion>(table_->sample(rng));
  }

  std::size_t num_slots() const noexcept override { return slots_; }

 private:
  const support::AliasTable* table_;
  std::size_t slots_;
};

}  // namespace consensus::core
