// LEM510 — Lemmas 5.4–5.10: bias amplification between two tied strong
// opinions.
//
// Paper claim: starting from two strong opinions with *zero* bias, within
// O(log n/γ₀) rounds either the bias reaches x_δ = c*·√(log n/n) or one of
// the opinions turns weak (Lemma 5.10; built from the additive drift of δ²,
// Lemma 5.6, and the multiplicative drift, Lemma 5.4). We measure the
// first time min{τ⁺_δ, τ_weak(0), τ_weak(1)} fires.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"

using namespace consensus;

namespace {

struct AmplifyOutcome {
  double tau = -1.0;    // min of the three stopping times
  bool via_bias = false;  // fired because |δ| hit the target
};

std::vector<AmplifyOutcome> amplification(const char* protocol_name,
                                          std::uint64_t n, std::size_t reps,
                                          std::uint64_t seed) {
  const double x_delta =
      std::sqrt(std::log(static_cast<double>(n)) / static_cast<double>(n));
  core::StoppingTimeTracker::Options topt;
  topt.focus_i = 0;
  topt.focus_j = 1;
  topt.bias_target = x_delta;
  const auto start = core::two_tied_leaders(n, 10, 0.3);
  const auto runs = bench::run_tracked(
      bench::scenario(protocol_name, start, seed, 100000), reps, topt);
  std::vector<AmplifyOutcome> out(reps);
  for (std::size_t r = 0; r < reps; ++r) {
    const auto& tracker = runs.trackers[r];
    const std::uint64_t stop =
        std::min({tracker.tau_bias(), tracker.tau_weak_i(),
                  tracker.tau_weak_j()});
    if (stop != core::kNever) {
      out[r].tau = static_cast<double>(stop);
      out[r].via_bias = tracker.tau_bias() == stop;
    }
  }
  return out;
}

}  // namespace

int main() {
  exp::ExperimentReport report(
      "LEM510",
      "bias amplification from an exact tie (two strong opinions, 25 reps)",
      {"dynamics", "n", "x_delta", "tau_median", "tau_max", "via_bias_frac",
       "envelope_logn/g0"},
      "lem510_bias_amplification.csv");

  bool always_fired = true;
  bool within_envelope = true;
  for (const char* name : {"3-majority", "2-choices"}) {
    for (std::uint64_t n : {4096ull, 16384ull, 65536ull}) {
      const auto outcomes = amplification(name, n, 25, 0x5101);
      const auto start = core::two_tied_leaders(n, 10, 0.3);
      const double gamma0 = start.gamma();
      std::vector<double> taus;
      std::size_t via_bias = 0;
      for (const auto& o : outcomes) {
        if (o.tau >= 0) {
          taus.push_back(o.tau);
          via_bias += o.via_bias;
        }
      }
      always_fired = always_fired && taus.size() == outcomes.size();
      const auto s = support::summarize(taus);
      const double envelope =
          40.0 * std::log(static_cast<double>(n)) / gamma0;
      within_envelope = within_envelope && s.max <= envelope;
      const double x_delta =
          std::sqrt(std::log(static_cast<double>(n)) / static_cast<double>(n));
      report.add_row(
          {name, std::to_string(n), bench::fmt3(x_delta),
           bench::fmt1(s.median), bench::fmt1(s.max),
           bench::fmt3(static_cast<double>(via_bias) /
                       static_cast<double>(outcomes.size())),
           bench::fmt1(envelope)});
    }
  }
  report.add_check(
      "min{tau_bias, tau_weak_i, tau_weak_j} fired in every replication",
      always_fired);
  report.add_check("all firings within 40 * log n / gamma0 rounds",
                   within_envelope);
  return exp::exit_code(report.finish());
}
