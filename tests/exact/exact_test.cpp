// The exact Markov solver is the library's gold standard: it solves the
// k = 2 absorption equations directly, and the Monte-Carlo engines must
// agree with it within sampling error.
#include <gtest/gtest.h>

#include <cmath>

#include "consensus/core/counting_engine.hpp"
#include "consensus/core/runner.hpp"
#include "consensus/exact/linalg.hpp"
#include "consensus/exact/markov.hpp"
#include "consensus/support/stats.hpp"
#include "test_util.hpp"

namespace consensus::exact {
namespace {

// ---------- linalg ----------

TEST(SolveLinear, SolvesKnownSystem) {
  Matrix a(2, 2);
  a.at(0, 0) = 2;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 3;
  const auto x = solve_linear(a, {5, 10});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinear, PivotsWhenDiagonalIsZero) {
  Matrix a(2, 2);
  a.at(0, 0) = 0;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 0;
  const auto x = solve_linear(a, {2, 3});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveLinear, RejectsSingularAndMismatched) {
  Matrix singular(2, 2);
  singular.at(0, 0) = 1;
  singular.at(0, 1) = 2;
  singular.at(1, 0) = 2;
  singular.at(1, 1) = 4;
  EXPECT_THROW(solve_linear(singular, {1, 1}), std::runtime_error);
  Matrix ok(2, 2, 1.0);
  EXPECT_THROW(solve_linear(ok, {1, 2, 3}), std::invalid_argument);
}

// ---------- pmf building blocks ----------

TEST(BinomialPmf, SumsToOneAndMatchesMoments) {
  const auto pmf = binomial_pmf(50, 0.3);
  double sum = 0, mean = 0;
  for (std::size_t x = 0; x < pmf.size(); ++x) {
    sum += pmf[x];
    mean += static_cast<double>(x) * pmf[x];
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_NEAR(mean, 15.0, 1e-9);
}

TEST(BinomialPmf, DegenerateP) {
  const auto zero = binomial_pmf(5, 0.0);
  EXPECT_DOUBLE_EQ(zero[0], 1.0);
  const auto one = binomial_pmf(5, 1.0);
  EXPECT_DOUBLE_EQ(one[5], 1.0);
}

TEST(TransitionRow, RowsAreStochastic) {
  for (auto chain :
       {Chain::kVoter, Chain::kThreeMajority, Chain::kTwoChoices}) {
    for (std::uint64_t c : {1ull, 10ull, 20ull, 39ull}) {
      const auto row = transition_row(chain, 40, c);
      double sum = 0;
      for (double p : row) {
        EXPECT_GE(p, -1e-12);
        sum += p;
      }
      EXPECT_NEAR(sum, 1.0, 1e-8) << "chain " << int(chain) << " c=" << c;
    }
  }
}

TEST(TransitionRow, AbsorbingStatesStayPut) {
  for (auto chain :
       {Chain::kVoter, Chain::kThreeMajority, Chain::kTwoChoices}) {
    const auto at_zero = transition_row(chain, 30, 0);
    EXPECT_NEAR(at_zero[0], 1.0, 1e-12);
    const auto at_n = transition_row(chain, 30, 30);
    EXPECT_NEAR(at_n[30], 1.0, 1e-12);
  }
}

TEST(TransitionRow, MeanMatchesLemma41) {
  // E[c'] = n·α(1 + α − γ) for 3-Majority and 2-Choices alike.
  const std::uint64_t n = 50;
  for (auto chain : {Chain::kThreeMajority, Chain::kTwoChoices}) {
    for (std::uint64_t c : {10ull, 25ull, 40ull}) {
      const auto row = transition_row(chain, n, c);
      double mean = 0;
      for (std::size_t x = 0; x < row.size(); ++x) {
        mean += static_cast<double>(x) * row[x];
      }
      const double a = double(c) / double(n);
      const double gamma = a * a + (1 - a) * (1 - a);
      EXPECT_NEAR(mean, double(n) * a * (1 + a - gamma), 1e-6)
          << "chain " << int(chain) << " c=" << c;
    }
  }
}

// ---------- absorption analysis ----------

TEST(Absorption, VoterWinProbabilityIsMartingaleExact) {
  // Classical: Pr[opinion 0 wins] = α₀ exactly for the voter model.
  const auto result = absorption_two_opinions(Chain::kVoter, 30);
  for (std::uint64_t c = 0; c <= 30; ++c) {
    EXPECT_NEAR(result.win_prob[c], double(c) / 30.0, 1e-8) << "c=" << c;
  }
}

TEST(Absorption, SymmetryOfBalancedChain) {
  for (auto chain : {Chain::kThreeMajority, Chain::kTwoChoices}) {
    const auto result = absorption_two_opinions(chain, 40);
    for (std::uint64_t c = 1; c < 40; ++c) {
      EXPECT_NEAR(result.expected_rounds[c], result.expected_rounds[40 - c],
                  1e-6);
      EXPECT_NEAR(result.win_prob[c] + result.win_prob[40 - c], 1.0, 1e-8);
    }
    // Balanced start is the slowest start.
    const double mid = result.expected_rounds[20];
    EXPECT_GE(mid, result.expected_rounds[5]);
    EXPECT_GE(mid, result.expected_rounds[35]);
  }
}

TEST(Absorption, ThreeMajorityAmplifiesBias) {
  // With drift, a 60/40 start wins far more often than the driftless 0.6.
  const auto result = absorption_two_opinions(Chain::kThreeMajority, 50);
  EXPECT_GT(result.win_prob[30], 0.70);
}

TEST(Absorption, MonteCarloMatchesExactThreeMajority) {
  const std::uint64_t n = 50;
  const auto exact_result = absorption_two_opinions(Chain::kThreeMajority, n);
  const auto protocol = core::make_protocol("3-majority");
  support::Rng rng(0xe8ac7);
  support::Welford rounds;
  std::size_t wins0 = 0;
  constexpr int kTrials = 4000;
  for (int t = 0; t < kTrials; ++t) {
    core::CountingEngine engine(*protocol, core::Configuration({25, 25}));
    const auto res = core::run_to_consensus(engine, rng);
    rounds.add(static_cast<double>(res.rounds));
    wins0 += (res.winner == 0);
  }
  EXPECT_TRUE(testing::mean_close(rounds, exact_result.expected_rounds[25]))
      << rounds.mean() << " vs " << exact_result.expected_rounds[25];
  const auto ci = support::wilson_ci(wins0, kTrials, 4.0);
  EXPECT_LE(ci.lo, exact_result.win_prob[25]);
  EXPECT_GE(ci.hi, exact_result.win_prob[25]);
}

TEST(Absorption, MonteCarloMatchesExactTwoChoices) {
  const std::uint64_t n = 40;
  const auto exact_result = absorption_two_opinions(Chain::kTwoChoices, n);
  const auto protocol = core::make_protocol("2-choices");
  support::Rng rng(0x2c4ac7);
  support::Welford rounds;
  std::size_t wins0 = 0;
  constexpr int kTrials = 3000;
  for (int t = 0; t < kTrials; ++t) {
    core::CountingEngine engine(*protocol, core::Configuration({12, 28}));
    const auto res = core::run_to_consensus(engine, rng);
    rounds.add(static_cast<double>(res.rounds));
    wins0 += (res.winner == 0);
  }
  EXPECT_TRUE(testing::mean_close(rounds, exact_result.expected_rounds[12]))
      << rounds.mean() << " vs " << exact_result.expected_rounds[12];
  const auto ci = support::wilson_ci(wins0, kTrials, 4.0);
  EXPECT_LE(ci.lo, exact_result.win_prob[12]);
  EXPECT_GE(ci.hi, exact_result.win_prob[12]);
}

TEST(Absorption, MonteCarloMatchesExactVoter) {
  const std::uint64_t n = 30;
  const auto exact_result = absorption_two_opinions(Chain::kVoter, n);
  const auto protocol = core::make_protocol("voter");
  support::Rng rng(0x107e4);
  support::Welford rounds;
  constexpr int kTrials = 3000;
  for (int t = 0; t < kTrials; ++t) {
    core::CountingEngine engine(*protocol, core::Configuration({10, 20}));
    const auto res = core::run_to_consensus(engine, rng);
    rounds.add(static_cast<double>(res.rounds));
  }
  EXPECT_TRUE(testing::mean_close(rounds, exact_result.expected_rounds[10]))
      << rounds.mean() << " vs " << exact_result.expected_rounds[10];
}

TEST(Absorption, RejectsTinyN) {
  EXPECT_THROW(absorption_two_opinions(Chain::kVoter, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace consensus::exact
