// Cross-validation: the closed-form counting transitions must generate the
// same one-round distribution as the per-vertex agent engine on K_n with
// self-loops (they are two samplers of the same Markov kernel), and
// h-Majority with h = 3 must match 3-Majority distributionally.
#include <gtest/gtest.h>

#include <string>

#include "consensus/core/agent_engine.hpp"
#include "consensus/core/counting_engine.hpp"
#include "consensus/core/init.hpp"
#include "consensus/core/undecided.hpp"
#include "consensus/support/stats.hpp"
#include "test_util.hpp"

namespace consensus::core {
namespace {

struct MomentPair {
  support::Welford counting;
  support::Welford agent;
};

/// Two-sample z-test on the means of α'(focus) after one round.
void expect_same_mean(const MomentPair& m, const std::string& label) {
  const double diff = m.counting.mean() - m.agent.mean();
  const double se = std::sqrt(m.counting.sem() * m.counting.sem() +
                              m.agent.sem() * m.agent.sem());
  EXPECT_LE(std::fabs(diff), 5.0 * se + 1e-12)
      << label << ": counting=" << m.counting.mean()
      << " agent=" << m.agent.mean();
}

/// Same check on variances (ratio within Monte-Carlo slack).
void expect_same_variance(const MomentPair& m, const std::string& label) {
  const double vc = m.counting.variance();
  const double va = m.agent.variance();
  ASSERT_GT(vc, 0.0) << label;
  ASSERT_GT(va, 0.0) << label;
  EXPECT_NEAR(vc / va, 1.0, 0.15) << label << ": var ratio " << vc / va;
}

MomentPair one_step_moments(const Protocol& protocol,
                            const Configuration& start, Opinion focus,
                            int trials, std::uint64_t seed) {
  MomentPair m;
  const auto g = graph::Graph::complete_with_self_loops(start.num_vertices());
  support::Rng rng_c(seed);
  support::Rng rng_a(seed + 1);
  for (int t = 0; t < trials; ++t) {
    CountingEngine ce(protocol, start);
    ce.step(rng_c);
    m.counting.add(ce.config().alpha(focus));

    AgentEngine ae(protocol, g, start);
    ae.step(rng_a);
    m.agent.add(ae.config().alpha(focus));
  }
  return m;
}

struct CrossCase {
  const char* protocol;
  bool undecided_slot;
};

class CountingVsAgent : public ::testing::TestWithParam<CrossCase> {};

TEST_P(CountingVsAgent, OneStepMomentsMatch) {
  const auto [name, undecided_slot] = GetParam();
  const auto protocol = make_protocol(name);
  Configuration start({300, 120, 60, 20});
  if (undecided_slot) start = with_undecided_slot(start);
  const auto m = one_step_moments(*protocol, start, 0, 6000, 0xc0de);
  expect_same_mean(m, name);
  expect_same_variance(m, name);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, CountingVsAgent,
    ::testing::Values(CrossCase{"3-majority", false},
                      CrossCase{"2-choices", false},
                      CrossCase{"voter", false},
                      CrossCase{"undecided", true},
                      CrossCase{"h-majority:5", false},
                      CrossCase{"median", false}));

TEST(HMajority3EquivalentToThreeMajority, OneStepMoments) {
  // The "w1 == w2 ? w1 : w3" rule is exactly majority-of-3 with uniform
  // tie-breaking; their one-round laws coincide.
  const Configuration start({250, 150, 80, 20});
  const auto three = make_protocol("3-majority");
  const auto h3 = make_protocol("h-majority:3");
  support::Rng rng_a(1);
  support::Rng rng_b(2);
  support::Welford wa, wb;
  for (int t = 0; t < 8000; ++t) {
    CountingEngine ea(*three, start);
    ea.step(rng_a);
    wa.add(ea.config().alpha(0));
    CountingEngine eb(*h3, start);
    eb.step(rng_b);
    wb.add(eb.config().alpha(0));
  }
  const double se = std::sqrt(wa.sem() * wa.sem() + wb.sem() * wb.sem());
  EXPECT_LE(std::fabs(wa.mean() - wb.mean()), 5.0 * se);
  EXPECT_NEAR(wa.variance() / wb.variance(), 1.0, 0.15);
}

TEST(CountingVsAgentKS, FullOneStepDistributionMatches) {
  // Beyond moments: two-sample Kolmogorov–Smirnov on the full one-round
  // distribution of count(0) for both headline dynamics.
  for (const char* name : {"3-majority", "2-choices"}) {
    const auto protocol = make_protocol(name);
    const Configuration start({160, 90, 50});
    const auto g = graph::Graph::complete_with_self_loops(300);
    support::Rng rng_c(21);
    support::Rng rng_a(22);
    std::vector<double> counting, agent;
    for (int t = 0; t < 5000; ++t) {
      CountingEngine ce(*protocol, start);
      ce.step(rng_c);
      counting.push_back(static_cast<double>(ce.config().count(0)));
      AgentEngine ae(*protocol, g, start);
      ae.step(rng_a);
      agent.push_back(static_cast<double>(ae.config().count(0)));
    }
    const double d = support::ks_statistic(counting, agent);
    const double p = support::ks_p_value(d, counting.size(), agent.size());
    EXPECT_GT(p, 1e-4) << name << ": KS d=" << d;
  }
}

TEST(CountingVsAgentUndecided, UndecidedMassMatches) {
  // Also compare the ⊥ slot itself (the part the closed form is most
  // likely to get wrong).
  Undecided protocol;
  Configuration start = with_undecided_slot(Configuration({200, 150, 50}));
  const Opinion bot = 3;
  const auto g = graph::Graph::complete_with_self_loops(400);
  support::Rng rng_c(11);
  support::Rng rng_a(12);
  support::Welford wc, wa;
  for (int t = 0; t < 6000; ++t) {
    CountingEngine ce(protocol, start);
    ce.step(rng_c);
    wc.add(ce.config().alpha(bot));
    AgentEngine ae(protocol, g, start);
    ae.step(rng_a);
    wa.add(ae.config().alpha(bot));
  }
  const double se = std::sqrt(wc.sem() * wc.sem() + wa.sem() * wa.sem());
  EXPECT_LE(std::fabs(wc.mean() - wa.mean()), 5.0 * se)
      << wc.mean() << " vs " << wa.mean();
}

}  // namespace
}  // namespace consensus::core
