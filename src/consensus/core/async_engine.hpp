// AsyncEngine: asynchronous dynamics on K_n with self-loops (§1.1, the
// [CMRSS25] model): at each *tick* one uniformly random vertex wakes up and
// applies the protocol's local rule; n ticks correspond to one synchronous
// round's worth of work.
//
// Works on counts only: picking a uniformly random vertex is picking an
// opinion class with probability proportional to its count, and the woken
// vertex samples neighbours from the full current counts (the complete graph
// has self-loops, so the vertex may sample itself). A Fenwick-tree sampler
// gives O(log k) per tick.
#pragma once

#include <cstdint>

#include "consensus/core/configuration.hpp"
#include "consensus/core/engine.hpp"
#include "consensus/core/protocol.hpp"
#include "consensus/support/rng.hpp"
#include "consensus/support/sampling.hpp"

namespace consensus::core {

class AsyncEngine final : public Engine {
 public:
  AsyncEngine(const Protocol& protocol, Configuration initial);

  std::uint64_t ticks() const noexcept { return ticks_; }
  /// Elapsed time in synchronous-round units (ticks / n).
  double rounds_equivalent() const noexcept {
    return static_cast<double>(ticks_) /
           static_cast<double>(config_.num_vertices());
  }

  const Configuration& config() const noexcept { return config_; }
  Configuration configuration() const override { return config_; }
  const Protocol& protocol() const noexcept override { return *protocol_; }
  std::uint64_t rounds_elapsed() const noexcept override {
    return ticks_ / config_.num_vertices();
  }

  /// One asynchronous tick: a uniformly random vertex updates.
  void tick(support::Rng& rng);

  /// Runs n ticks (one synchronous-round equivalent).
  void step_round(support::Rng& rng);
  /// Engine interface: one round-equivalent (n ticks).
  void step(support::Rng& rng) override { step_round(rng); }

  bool is_consensus() const override {
    return protocol_->is_consensus(config_);
  }
  Opinion winner() const override { return protocol_->winner(config_); }

  /// State = counts + tick counter; the Fenwick sampler is rebuilt on
  /// restore (it is a deterministic function of the counts).
  EngineState capture_state() const override;
  void restore_state(const EngineState& state) override;

 private:
  const Protocol* protocol_;
  Configuration config_;
  support::FenwickSampler sampler_;
  std::uint64_t ticks_ = 0;
};

}  // namespace consensus::core
