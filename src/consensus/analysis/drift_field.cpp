#include "consensus/analysis/drift_field.hpp"

#include <cmath>
#include <stdexcept>

namespace consensus::analysis {

DriftField::DriftField(std::size_t bins, double lo, double hi) : lo_(lo) {
  if (bins == 0) throw std::invalid_argument("DriftField: bins >= 1");
  if (!(hi > lo)) throw std::invalid_argument("DriftField: hi > lo required");
  width_ = (hi - lo) / static_cast<double>(bins);
  cells_.resize(bins);
}

void DriftField::add(double x, double delta) {
  const double offset = (x - lo_) / width_;
  if (offset < 0.0) return;
  const auto b = static_cast<std::size_t>(offset);
  if (b >= cells_.size()) return;
  cells_[b].add(delta);
}

double DriftField::bin_lo(std::size_t b) const {
  if (b >= cells_.size()) throw std::out_of_range("DriftField::bin_lo");
  return lo_ + width_ * static_cast<double>(b);
}

double DriftField::bin_hi(std::size_t b) const {
  return bin_lo(b) + width_;
}

support::Welford measure_gamma_drift(const core::Protocol& protocol,
                                     const core::Configuration& config,
                                     std::size_t trials, support::Rng& rng) {
  support::Welford w;
  const double gamma0 = config.gamma();
  for (std::size_t t = 0; t < trials; ++t) {
    core::CountingEngine engine(protocol, config);
    engine.step(rng);
    w.add(engine.config().gamma() - gamma0);
  }
  return w;
}

void accumulate_gamma_drift_along_run(const core::Protocol& protocol,
                                      core::Configuration start,
                                      std::uint64_t rounds, DriftField& field,
                                      support::Rng& rng) {
  core::CountingEngine engine(protocol, std::move(start));
  double gamma = engine.config().gamma();
  for (std::uint64_t t = 0; t < rounds && !engine.is_consensus(); ++t) {
    engine.step(rng);
    const double next = engine.config().gamma();
    field.add(gamma, next - gamma);
    gamma = next;
  }
}

}  // namespace consensus::analysis
