// Empirical drift fields: binned estimates of one-step drifts along a run
// or across probe configurations. The ABL-DRIFT bench uses these to plot
// the measured E[Δγ | γ] field against the Lemma 4.1 lower bound, and the
// tests validate the submartingale property bin by bin.
#pragma once

#include <cstddef>
#include <vector>

#include "consensus/core/configuration.hpp"
#include "consensus/core/counting_engine.hpp"
#include "consensus/core/protocol.hpp"
#include "consensus/support/stats.hpp"

namespace consensus::analysis {

/// Accumulates (x, Δ) observations into uniform bins over [lo, hi).
class DriftField {
 public:
  DriftField(std::size_t bins, double lo, double hi);

  void add(double x, double delta);

  std::size_t bins() const noexcept { return cells_.size(); }
  double bin_lo(std::size_t b) const;
  double bin_hi(std::size_t b) const;
  /// Per-bin statistics of the observed deltas (empty Welford if no data).
  const support::Welford& cell(std::size_t b) const { return cells_.at(b); }

 private:
  double lo_;
  double width_;
  std::vector<support::Welford> cells_;
};

/// Monte-Carlo estimate of the one-step γ drift E[γ′] − γ at a fixed
/// configuration (repeated single steps from the same state).
support::Welford measure_gamma_drift(const core::Protocol& protocol,
                                     const core::Configuration& config,
                                     std::size_t trials, support::Rng& rng);

/// Walks one full trajectory of `rounds` rounds (or until consensus),
/// feeding every consecutive (γ_t, γ_{t+1} − γ_t) pair into `field`.
void accumulate_gamma_drift_along_run(const core::Protocol& protocol,
                                      core::Configuration start,
                                      std::uint64_t rounds, DriftField& field,
                                      support::Rng& rng);

}  // namespace consensus::analysis
