// Static dispatch from a `Protocol` reference to its concrete built-in
// class, so engine hot loops can call the non-virtual `update_from_draws`
// bodies (protocol × sampler representation instantiated together —
// devirtualized, inlinable, RNG state kept in registers across a chunk).
//
// `visit_fused` consults `Protocol::fused_rule()`: kNone (the default, and
// what diagnostic wrappers like make_generic_only report) returns false
// and the caller stays on the virtual reference path. Every fused body
// draws exactly the stream `update` would, so fused and virtual execution
// of the same sampler are bit-identical — the tests pin that.
#pragma once

#include "consensus/core/h_majority.hpp"
#include "consensus/core/median_rule.hpp"
#include "consensus/core/protocol.hpp"
#include "consensus/core/three_majority.hpp"
#include "consensus/core/three_majority_keep.hpp"
#include "consensus/core/two_choices.hpp"
#include "consensus/core/undecided.hpp"
#include "consensus/core/voter.hpp"

namespace consensus::core {

/// Calls `visit` with `protocol` downcast to its concrete built-in type
/// and returns true; returns false (no call) for FusedRule::kNone.
/// The visitor is generic: `visit(const auto& concrete_protocol)`.
template <typename Visitor>
bool visit_fused(const Protocol& protocol, Visitor&& visit) {
  switch (protocol.fused_rule()) {
    case FusedRule::kVoter:
      visit(static_cast<const Voter&>(protocol));
      return true;
    case FusedRule::kThreeMajority:
      visit(static_cast<const ThreeMajority&>(protocol));
      return true;
    case FusedRule::kThreeMajorityKeep:
      visit(static_cast<const ThreeMajorityKeep&>(protocol));
      return true;
    case FusedRule::kTwoChoices:
      visit(static_cast<const TwoChoices&>(protocol));
      return true;
    case FusedRule::kHMajority:
      visit(static_cast<const HMajority&>(protocol));
      return true;
    case FusedRule::kMedian:
      visit(static_cast<const MedianRule&>(protocol));
      return true;
    case FusedRule::kUndecided:
      visit(static_cast<const Undecided&>(protocol));
      return true;
    case FusedRule::kNone:
      break;
  }
  return false;
}

}  // namespace consensus::core
