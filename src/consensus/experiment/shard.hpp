// Distributed sweep fabric, part 1: deterministic sharding of a sweep's
// trial grid across workers, and merging per-shard JSONL manifests back
// into one.
//
// A shard is `index/count`; a grid point belongs to the shard
// `stable_label_hash(label) % count`. The hash is a fixed FNV-1a over the
// point's human-readable label — stable across processes, platforms, and
// releases — so N workers given the same SweepSpec partition the grid
// identically with no coordination. Because trial seeds are pure functions
// of (spec.seed, point, replication) and aggregation is order-independent
// (PointStatsSink slots by (point, rep)), the union of all shards'
// manifests reproduces a single-process run byte-for-byte.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "consensus/experiment/sink.hpp"

namespace consensus::exp {

/// FNV-1a 64-bit over the label bytes. Fixed for all time: shard
/// assignment must not change across releases or a resumed worker would
/// pick up someone else's points.
std::uint64_t stable_label_hash(std::string_view label) noexcept;

struct ShardPlan {
  std::size_t index = 0;
  std::size_t count = 1;

  /// True when this shard runs the point with this label. count <= 1 owns
  /// everything (the unsharded plan).
  bool owns(std::string_view label) const noexcept {
    return count <= 1 || stable_label_hash(label) % count == index;
  }

  /// Indices of the owned points, given all point labels in grid order.
  std::vector<std::size_t> owned_points(
      const std::vector<std::string>& labels) const;
};

/// Parses "i/N" (0 <= i < N, N >= 1). Throws std::invalid_argument.
ShardPlan parse_shard(std::string_view text);

/// Loads and unions several shard manifests. Later files win on duplicate
/// (point, replication) cells — harmless, records are bit-identical when
/// the shards came from the same spec. Missing files throw (a silently
/// absent shard would merge to silently wrong aggregates).
SweepResume merge_manifests(const std::vector<std::string>& inputs);

/// Writes a merged manifest: one line per record in (point, replication)
/// order — deterministic regardless of input file order or each shard's
/// completion order.
void write_manifest(const std::string& path, const SweepResume& records);

}  // namespace consensus::exp
