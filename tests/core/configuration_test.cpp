#include "consensus/core/configuration.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "consensus/support/rng.hpp"

namespace consensus::core {
namespace {

TEST(Configuration, BasicsAndInvariants) {
  Configuration c({3, 4, 5});
  EXPECT_EQ(c.num_vertices(), 12u);
  EXPECT_EQ(c.num_opinions(), 3u);
  EXPECT_EQ(c.count(1), 4u);
  EXPECT_DOUBLE_EQ(c.alpha(2), 5.0 / 12.0);
  EXPECT_THROW(Configuration({}), std::invalid_argument);
  EXPECT_THROW(Configuration({0, 0}), std::invalid_argument);
}

TEST(Configuration, GammaMatchesDefinition) {
  Configuration c({1, 1, 2});
  // α = (1/4, 1/4, 1/2): γ = 1/16 + 1/16 + 1/4 = 3/8.
  EXPECT_DOUBLE_EQ(c.gamma(), 0.375);
}

TEST(Configuration, GammaAtLeastOneOverK) {
  // Cauchy–Schwarz: γ ≥ 1/k, equality iff balanced (paper, §2).
  Configuration balanced({5, 5, 5, 5});
  EXPECT_DOUBLE_EQ(balanced.gamma(), 0.25);
  Configuration skewed({17, 1, 1, 1});
  EXPECT_GT(skewed.gamma(), 0.25);
}

TEST(Configuration, GammaIsOneAtConsensus) {
  Configuration c({0, 10, 0});
  EXPECT_DOUBLE_EQ(c.gamma(), 1.0);
  EXPECT_TRUE(c.is_consensus());
}

TEST(Configuration, BiasAndScaledBias) {
  Configuration c({6, 2, 2});  // α = 0.6, 0.2, 0.2
  EXPECT_DOUBLE_EQ(c.bias(0, 1), 0.4);
  EXPECT_DOUBLE_EQ(c.bias(1, 0), -0.4);
  // η(0,1) = δ/√max = 0.4/√0.6
  EXPECT_NEAR(c.scaled_bias(0, 1), 0.4 / std::sqrt(0.6), 1e-12);
  Configuration dead({4, 0, 0});
  EXPECT_THROW(dead.scaled_bias(1, 2), std::invalid_argument);
}

TEST(Configuration, SupportAndConsensus) {
  Configuration c({0, 3, 0, 1});
  EXPECT_EQ(c.support_size(), 2u);
  EXPECT_FALSE(c.is_consensus());
  EXPECT_TRUE(c.is_extinct(0));
  EXPECT_FALSE(c.is_extinct(3));
}

TEST(Configuration, PluralityAndRunnerUp) {
  Configuration c({2, 7, 3, 7});
  EXPECT_EQ(c.plurality(), 1u);  // ties → smallest index
  EXPECT_EQ(c.runner_up(), 3u);
  EXPECT_DOUBLE_EQ(c.plurality_margin(), 0.0);
  Configuration single({5});
  EXPECT_THROW(single.runner_up(), std::logic_error);
}

TEST(Configuration, WeakStrongClassification) {
  // Definition 4.4(iv) with c_weak = 0.1: weak iff α ≤ 0.9·γ.
  Configuration c({90, 10});  // α = (0.9, 0.1), γ = 0.82
  EXPECT_TRUE(c.is_weak(1));    // 0.1 ≤ 0.738
  EXPECT_TRUE(c.is_strong(0));  // 0.9 > 0.738
  // The plurality is always strong (max α ≥ γ ≥ (1−c)γ needs α > (1−c)γ;
  // max α ≥ γ > (1−c_weak)γ strictly for γ > 0).
  Configuration b({25, 25, 25, 25});
  EXPECT_TRUE(b.is_strong(b.plurality()));
}

TEST(Configuration, ActiveThresholdBoundary) {
  Configuration c({50, 30, 20});
  EXPECT_TRUE(c.is_active(2, 0.2));    // 0.20 ≥ 0.19
  EXPECT_FALSE(c.is_active(2, 0.25));  // 0.20 < 0.2375
}

TEST(Configuration, MoveConservesAndValidates) {
  Configuration c({5, 5});
  c.move(0, 1, 3);
  EXPECT_EQ(c.count(0), 2u);
  EXPECT_EQ(c.count(1), 8u);
  EXPECT_EQ(c.num_vertices(), 10u);
  EXPECT_THROW(c.move(0, 1, 3), std::invalid_argument);
  c.move(0, 0, 2);  // no-op
  EXPECT_EQ(c.count(0), 2u);
}

TEST(Configuration, ReplaceCountsValidates) {
  Configuration c({5, 5});
  c.replace_counts({1, 9});
  EXPECT_EQ(c.count(1), 9u);
  EXPECT_THROW(c.replace_counts({1, 2}), std::invalid_argument);   // sum
  EXPECT_THROW(c.replace_counts({10}), std::invalid_argument);     // k
}

TEST(Configuration, SwapCountsValidatesAndRecyclesBuffer) {
  Configuration c({5, 5});
  std::vector<std::uint64_t> buffer{1, 9};
  c.swap_counts(buffer);
  EXPECT_EQ(c.count(1), 9u);
  EXPECT_EQ(buffer, (std::vector<std::uint64_t>{5, 5}));  // old counts back
  std::vector<std::uint64_t> bad_sum{1, 2};
  EXPECT_THROW(c.swap_counts(bad_sum), std::invalid_argument);
  std::vector<std::uint64_t> bad_k{10};
  EXPECT_THROW(c.swap_counts(bad_k), std::invalid_argument);
}

TEST(Configuration, EqualityAndToString) {
  Configuration a({1, 2});
  Configuration b({1, 2});
  Configuration c({2, 1});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a.to_string().find("n=3"), std::string::npos);
}

// ------------------------------------------- lazy plurality max-heap

/// Dense reference for plurality/runner_up: the O(k) scans the lazy heap
/// replaced, with the same documented tie-breaking (smallest index wins).
Opinion dense_plurality(const Configuration& c) {
  Opinion best = 0;
  for (std::size_t i = 0; i < c.num_opinions(); ++i) {
    if (c.counts()[i] > c.counts()[best]) best = static_cast<Opinion>(i);
  }
  return best;
}

Opinion dense_runner_up(const Configuration& c) {
  const Opinion top = dense_plurality(c);
  if (c.support_size() <= 1) return top == 0 ? 1 : 0;
  Opinion best = top == 0 ? 1 : 0;
  for (std::size_t i = 0; i < c.num_opinions(); ++i) {
    if (static_cast<Opinion>(i) == top) continue;
    if (c.counts()[i] > c.counts()[best]) best = static_cast<Opinion>(i);
  }
  return best;
}

void expect_heap_matches_dense(const Configuration& c) {
  EXPECT_EQ(c.plurality(), dense_plurality(c));
  if (c.num_opinions() >= 2) {
    EXPECT_EQ(c.runner_up(), dense_runner_up(c));
  }
}

TEST(PluralityHeap, MatchesDenseScanUnderEveryMutator) {
  Configuration c({40, 0, 25, 25, 10, 0});
  expect_heap_matches_dense(c);

  c.move(0, 2, 30);  // 2 overtakes 0
  expect_heap_matches_dense(c);
  c.move(3, 4, 25);  // 3 goes extinct, 4 grows
  expect_heap_matches_dense(c);
  c.move(4, 1, 35);  // 1 revives into the lead
  expect_heap_matches_dense(c);

  c.replace_counts({0, 0, 50, 0, 0, 50});  // wholesale: tie at the top
  expect_heap_matches_dense(c);
  EXPECT_EQ(c.plurality(), 2u);  // smallest index wins the tie
  EXPECT_EQ(c.runner_up(), 5u);

  std::vector<std::uint64_t> buf{10, 10, 10, 10, 30, 30};
  c.swap_counts(buf);
  expect_heap_matches_dense(c);

  // Sparse commit over the alive set (all six alive here).
  const std::vector<std::uint64_t> values{0, 0, 0, 0, 99, 1};
  c.assign_alive_counts(values);
  expect_heap_matches_dense(c);
  EXPECT_EQ(c.plurality(), 4u);
  EXPECT_EQ(c.runner_up(), 5u);
}

TEST(PluralityHeap, QueriesInterleavedWithMovesStayFresh) {
  // The regression this guards: a queried (valid) heap must absorb later
  // move()s incrementally — stale entries skipped, new ones surfacing.
  support::Rng rng(0x5eed);
  Configuration c({200, 150, 100, 50, 0, 0, 0, 0});
  expect_heap_matches_dense(c);  // builds the heap
  for (int step = 0; step < 2000; ++step) {
    // Random move among the slots, sometimes extinguishing/reviving.
    const auto alive = c.alive();
    const Opinion from = alive[rng.uniform_below(alive.size())];
    const Opinion to =
        static_cast<Opinion>(rng.uniform_below(c.num_opinions()));
    const std::uint64_t amount = rng.uniform_below(c.count(from) + 1);
    c.move(from, to, amount);
    if (step % 3 == 0) expect_heap_matches_dense(c);
  }
  expect_heap_matches_dense(c);
}

TEST(PluralityHeap, LongMoveChurnBetweenQueriesIsCompacted) {
  // Thousands of moves between two queries: the lazy heap must both stay
  // correct and not grow without bound (compaction is internal, so the
  // observable contract is simply correctness after heavy churn).
  support::Rng rng(0xc0de);
  Configuration c({1000, 900, 800, 700, 600});
  expect_heap_matches_dense(c);
  for (int round = 0; round < 5; ++round) {
    for (int step = 0; step < 5000; ++step) {
      const auto alive = c.alive();
      const Opinion from = alive[rng.uniform_below(alive.size())];
      const Opinion to =
          static_cast<Opinion>(rng.uniform_below(c.num_opinions()));
      c.move(from, to, rng.uniform_below(c.count(from) + 1) / 4);
    }
    expect_heap_matches_dense(c);
  }
}

TEST(PluralityHeap, RunnerUpWithDuplicateTopEntriesAndExtinction) {
  Configuration c({60, 40, 0, 0});
  expect_heap_matches_dense(c);
  // Bounce the leader's count so the heap accumulates duplicate current
  // entries for opinion 0, then ask for the runner-up.
  c.move(0, 1, 10);
  c.move(1, 0, 10);
  c.move(0, 1, 10);
  c.move(1, 0, 10);
  EXPECT_EQ(c.plurality(), 0u);
  EXPECT_EQ(c.runner_up(), 1u);
  expect_heap_matches_dense(c);
  // Extinguish the rival: runner-up falls back to the smallest extinct
  // index convention.
  c.move(1, 0, c.count(1));
  EXPECT_TRUE(c.is_consensus());
  EXPECT_EQ(c.plurality(), 0u);
  EXPECT_EQ(c.runner_up(), 1u);
}

}  // namespace
}  // namespace consensus::core
