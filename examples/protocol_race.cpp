// Scenario: which gossip rule should a system use?
//
// Races every protocol in the library on identical starts across a range of
// opinion counts and prints the consensus-time table — the engineering
// trade-off behind Theorem 1.1: 3-Majority costs 3 probes/round but caps at
// Θ̃(√n); 2-Choices costs 2 probes but pays Θ̃(k); the voter model costs 1
// probe and pays Θ(n) regardless of k. One ScenarioSpec per cell; the
// facade's run_many handles the seeding and the replication sweep.
#include <iostream>
#include <string>
#include <vector>

#include "consensus/api/simulation.hpp"
#include "consensus/support/table.hpp"

namespace {

double median_rounds(const std::string& protocol_name, std::uint64_t n,
                     std::uint32_t k, std::size_t reps, std::uint64_t seed) {
  using namespace consensus;
  api::ScenarioSpec spec;
  spec.protocol = protocol_name;
  spec.n = n;
  spec.k = k;
  spec.seed = seed;
  spec.max_rounds = 500000;
  auto sim = api::Simulation::from_spec(spec);
  const exp::PointStats stats = sim.run_many(reps);
  return stats.consensus_reached == 0 ? -1.0 : stats.rounds.median;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace consensus;

  const std::uint64_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16384;
  const std::size_t reps = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 7;

  const std::vector<std::string> protocols{
      "voter", "2-choices", "3-majority", "h-majority:5", "median",
      "undecided"};

  std::cout << "consensus rounds from a balanced start, n = " << n
            << " (median of " << reps << ")\n\n";
  std::vector<std::string> header{"k"};
  header.insert(header.end(), protocols.begin(), protocols.end());
  support::ConsoleTable table(header);

  std::uint64_t seed = 7;
  for (std::uint32_t k : {2u, 16u, 128u, 1024u}) {
    std::vector<std::string> row{std::to_string(k)};
    for (const auto& name : protocols) {
      const double med = median_rounds(name, n, k, reps, ++seed);
      row.push_back(med < 0 ? "n/a" : support::fmt("%.0f", med));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nprobes per node per round: voter 1, 2-choices/median 2, "
               "3-majority 3, h-majority:5 5, undecided 1.\n";
  return 0;
}
