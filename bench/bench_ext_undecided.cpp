// EXT-USD — §2.5: undecided-state dynamics with many opinions.
//
// The consensus time of USD for arbitrary 2 ≤ k ≤ n is the paper's stated
// open question; this bench contributes the empirical curve next to
// 3-Majority and 2-Choices on the same balanced starts.
#include <iostream>

#include "bench_util.hpp"

using namespace consensus;

namespace {

support::Summary usd_rounds(std::uint64_t n, std::uint32_t k,
                            std::size_t reps, std::uint64_t seed) {
  // The facade appends the ⊥ slot for the undecided protocol itself.
  api::ScenarioSpec spec;
  spec.protocol = "undecided";
  spec.n = n;
  spec.k = k;
  spec.seed = seed;
  spec.max_rounds = 500000;
  return bench::run_scenario(spec, reps).rounds;
}

}  // namespace

int main() {
  const std::uint64_t n = 1 << 13;

  exp::ExperimentReport report(
      "EXT-USD",
      "undecided-state dynamics vs 3-Majority/2-Choices (n=8192, 10 reps)",
      {"k", "usd_rounds", "3maj_rounds", "2ch_rounds"}, "ext_undecided.csv");

  std::vector<double> kd, usd, two_choices;
  bool usd_finished = true;
  for (std::uint32_t k : {2u, 8u, 32u, 128u, 512u}) {
    const auto start = core::balanced(n, k);
    const auto s_usd = usd_rounds(n, k, 10, 0xd1 + k);
    const auto s3 = bench::consensus_rounds("3-majority", start, 10, 0xd2 + k);
    const auto s2 = bench::consensus_rounds("2-choices", start, 10, 0xd3 + k);
    usd_finished = usd_finished && s_usd.n == 10;
    kd.push_back(k);
    usd.push_back(s_usd.median);
    two_choices.push_back(s2.median);
    report.add_row({std::to_string(k), bench::fmt1(s_usd.median),
                    bench::fmt1(s3.median), bench::fmt1(s2.median)});
  }
  report.add_check("USD reached consensus in every run", usd_finished);
  // Empirical answer to the open question at this scale: USD is NOT
  // monotone in k — past a point, more opinions mean more immediate
  // conflicts, a large undecided pool, and faster collapse. Check the two
  // robust features instead of monotonicity.
  const double peak = *std::max_element(usd.begin(), usd.end());
  report.add_check("USD curve is bounded (peak < 3x the k=32 value)",
                   peak < 3.0 * usd[2]);
  report.add_check("USD beats 2-Choices at k = 512 by >= 2x",
                   usd.back() * 2.0 < two_choices.back());
  std::cout << "note: the USD column is the open-question measurement; no "
               "theory line exists to compare against. The non-monotone "
               "shape (fast collapse for k >> 1 via the undecided pool) is "
               "the empirical finding.\n";
  return exp::exit_code(report.finish());
}
