#include "consensus/core/runner.hpp"

#include <stdexcept>

namespace consensus::core {

namespace {

struct InitialFacts {
  std::vector<bool> supported;
  Opinion plurality = 0;
  double gamma = 0.0;
  double margin = 0.0;
  std::uint64_t support = 0;
};

InitialFacts snapshot(const Configuration& config) {
  InitialFacts facts;
  facts.supported.resize(config.num_opinions());
  for (std::size_t i = 0; i < config.num_opinions(); ++i) {
    facts.supported[i] = config.counts()[i] > 0;
  }
  facts.plurality = config.plurality();
  facts.gamma = config.gamma();
  facts.margin = config.num_opinions() >= 2 ? config.plurality_margin() : 0.0;
  facts.support = config.support_size();
  return facts;
}

void finalize(RunResult& result, const InitialFacts& facts, bool consensus,
              Opinion winner, std::uint64_t rounds) {
  result.reached_consensus = consensus;
  result.rounds = rounds;
  result.initial_gamma = facts.gamma;
  result.initial_margin = facts.margin;
  result.initial_support = facts.support;
  if (consensus) {
    result.winner = winner;
    result.validity = facts.supported.at(winner);
    result.plurality_preserved = (winner == facts.plurality);
  }
}

}  // namespace

std::string_view to_string(StopReason reason) noexcept {
  switch (reason) {
    case StopReason::kNone: return "";
    case StopReason::kCancelled: return "cancelled";
    case StopReason::kDeadline: return "deadline";
  }
  return "";
}

RunResult run_to_consensus(Engine& engine, support::Rng& rng,
                           const RunOptions& options) {
  Configuration* mutable_config = engine.mutable_configuration();
  if (options.adversary && !mutable_config) {
    throw std::invalid_argument(
        "run_to_consensus: adversaries act on counts and are only supported "
        "by engines exposing mutable_configuration (the counting engine)");
  }
  const InitialFacts facts = snapshot(engine.configuration());
  RunResult result;
  if (options.observer) options.observer(0, engine.configuration());
  std::uint64_t t = 0;
  const bool checkpointing =
      options.checkpoint_every_rounds > 0 &&
      static_cast<bool>(options.on_checkpoint);
  while (!engine.is_consensus() && t < options.max_rounds) {
    if (options.cancel != nullptr && options.cancel->fired()) {
      // Cooperative early-out: record why and return (never throw — this
      // loop runs inside ThreadPool tasks during sweeps).
      result.stopped = options.cancel->reason() == "deadline"
                           ? StopReason::kDeadline
                           : StopReason::kCancelled;
      break;
    }
    engine.step(rng);
    ++t;
    if (options.adversary && !engine.is_consensus()) {
      options.adversary->corrupt(*mutable_config, rng);
    }
    if (options.observer) options.observer(t, engine.configuration());
    if (checkpointing && t % options.checkpoint_every_rounds == 0) {
      options.on_checkpoint(t);
    }
  }
  finalize(result, facts, engine.is_consensus(),
           engine.is_consensus() ? engine.winner() : Opinion{0}, t);
  return result;
}

}  // namespace consensus::core
