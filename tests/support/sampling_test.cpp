#include "consensus/support/sampling.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>
#include <set>

#include "consensus/support/stats.hpp"
#include "test_util.hpp"

namespace consensus::support {
namespace {

// ---------- binomial ----------

TEST(Binomial, EdgeCases) {
  Rng rng(1);
  EXPECT_EQ(binomial(rng, 0, 0.5), 0u);
  EXPECT_EQ(binomial(rng, 100, 0.0), 0u);
  EXPECT_EQ(binomial(rng, 100, 1.0), 100u);
  EXPECT_EQ(binomial(rng, 100, -0.1), 0u);
  EXPECT_EQ(binomial(rng, 100, 1.1), 100u);
}

TEST(Binomial, AlwaysWithinSupport) {
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LE(binomial(rng, 50, 0.7), 50u);
  }
}

struct BinomialCase {
  std::uint64_t n;
  double p;
};

class BinomialMoments : public ::testing::TestWithParam<BinomialCase> {};

TEST_P(BinomialMoments, MeanAndVarianceMatch) {
  const auto [n, p] = GetParam();
  Rng rng(0xb10 + n);
  auto w = testing::monte_carlo(60000, [&] {
    return static_cast<double>(binomial(rng, n, p));
  });
  const auto nd = static_cast<double>(n);
  EXPECT_TRUE(testing::mean_close(w, nd * p)) << "n=" << n << " p=" << p
                                              << " mean=" << w.mean();
  const double var = nd * p * (1 - p);
  EXPECT_NEAR(w.variance(), var, 0.06 * var + 0.02) << "n=" << n << " p=" << p;
}

// Covers both the inversion branch (np < 10) and BTRS (np >= 10),
// including the p > 0.5 mirror.
INSTANTIATE_TEST_SUITE_P(
    Sweep, BinomialMoments,
    ::testing::Values(BinomialCase{5, 0.5}, BinomialCase{30, 0.1},
                      BinomialCase{100, 0.04}, BinomialCase{100, 0.5},
                      BinomialCase{1000, 0.3}, BinomialCase{1000, 0.97},
                      BinomialCase{100000, 0.002}, BinomialCase{100000, 0.62},
                      BinomialCase{1u << 20, 0.25}));

TEST(Binomial, BTRSDistributionChiSquared) {
  // Full distribution check against exact pmf for Bin(40, 0.4).
  Rng rng(3);
  constexpr std::uint64_t kN = 40;
  constexpr double kP = 0.4;
  constexpr std::size_t kDraws = 200000;
  std::vector<std::uint64_t> observed(kN + 1, 0);
  for (std::size_t i = 0; i < kDraws; ++i) ++observed[binomial(rng, kN, kP)];
  // pmf via recurrence.
  std::vector<double> pmf(kN + 1);
  pmf[0] = std::pow(1 - kP, double(kN));
  for (std::uint64_t x = 1; x <= kN; ++x) {
    pmf[x] = pmf[x - 1] * (double(kN - x + 1) / double(x)) * (kP / (1 - kP));
  }
  // Merge tail buckets with expectation < 10 to keep chi² valid.
  std::vector<std::uint64_t> obs_m;
  std::vector<double> exp_m;
  std::uint64_t otail = 0;
  double etail = 0;
  for (std::uint64_t x = 0; x <= kN; ++x) {
    const double e = pmf[x] * kDraws;
    if (e < 10.0) {
      otail += observed[x];
      etail += e;
    } else {
      obs_m.push_back(observed[x]);
      exp_m.push_back(e);
    }
  }
  if (etail > 0) {
    obs_m.push_back(otail);
    exp_m.push_back(etail);
  }
  const double stat = chi_squared_statistic(obs_m, exp_m);
  // dof ≈ buckets−1 (≈ 20); 99.99th percentile of chi²(25) ≈ 62.
  EXPECT_LT(stat, 70.0) << "chi2=" << stat << " buckets=" << obs_m.size();
}

// ---------- multinomial ----------

TEST(Multinomial, SumsToN) {
  Rng rng(4);
  const std::vector<double> w{1.0, 2.0, 3.0, 4.0};
  for (int i = 0; i < 200; ++i) {
    auto counts = multinomial(rng, 1000, w);
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0ull), 1000u);
  }
}

TEST(Multinomial, ZeroWeightGetsZero) {
  Rng rng(5);
  const std::vector<double> w{1.0, 0.0, 3.0};
  for (int i = 0; i < 100; ++i) {
    auto counts = multinomial(rng, 500, w);
    EXPECT_EQ(counts[1], 0u);
  }
}

TEST(Multinomial, TrailingZeroWeight) {
  Rng rng(6);
  const std::vector<double> w{2.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    auto counts = multinomial(rng, 300, w);
    EXPECT_EQ(counts[2], 0u);
    EXPECT_EQ(counts[0] + counts[1], 300u);
  }
}

TEST(Multinomial, MarginalMeans) {
  Rng rng(7);
  const std::vector<double> w{0.1, 0.2, 0.3, 0.4};
  Welford w0, w2;
  for (int i = 0; i < 30000; ++i) {
    auto counts = multinomial(rng, 100, w);
    w0.add(static_cast<double>(counts[0]));
    w2.add(static_cast<double>(counts[2]));
  }
  EXPECT_TRUE(testing::mean_close(w0, 10.0)) << w0.mean();
  EXPECT_TRUE(testing::mean_close(w2, 30.0)) << w2.mean();
}

TEST(Multinomial, RejectsBadWeights) {
  Rng rng(8);
  std::vector<std::uint64_t> out;
  EXPECT_THROW(multinomial_into(rng, 10, std::vector<double>{0.0, 0.0}, out),
               std::invalid_argument);
  EXPECT_THROW(multinomial_into(rng, 10, std::vector<double>{1.0, -1.0}, out),
               std::invalid_argument);
}

// ---------- hypergeometric ----------

TEST(Hypergeometric, EdgeCases) {
  Rng rng(9);
  EXPECT_EQ(hypergeometric(rng, 10, 0, 5), 0u);
  EXPECT_EQ(hypergeometric(rng, 10, 10, 5), 5u);
  EXPECT_EQ(hypergeometric(rng, 10, 5, 0), 0u);
  EXPECT_THROW(hypergeometric(rng, 10, 11, 5), std::invalid_argument);
}

TEST(Hypergeometric, SupportBounds) {
  Rng rng(10);
  for (int i = 0; i < 3000; ++i) {
    const auto x = hypergeometric(rng, 20, 12, 15);
    EXPECT_GE(x, 7u);   // n + K − N = 15 + 12 − 20
    EXPECT_LE(x, 12u);  // min(n, K)
  }
}

TEST(Hypergeometric, Mean) {
  Rng rng(11);
  auto w = testing::monte_carlo(40000, [&] {
    return static_cast<double>(hypergeometric(rng, 100, 30, 20));
  });
  EXPECT_TRUE(testing::mean_close(w, 6.0)) << w.mean();
}

// ---------- poisson ----------

TEST(Poisson, SmallAndLargeMean) {
  Rng rng(12);
  auto w_small = testing::monte_carlo(
      60000, [&] { return static_cast<double>(poisson(rng, 2.5)); });
  EXPECT_TRUE(testing::mean_close(w_small, 2.5)) << w_small.mean();
  EXPECT_NEAR(w_small.variance(), 2.5, 0.1);

  auto w_large = testing::monte_carlo(
      60000, [&] { return static_cast<double>(poisson(rng, 120.0)); });
  EXPECT_TRUE(testing::mean_close(w_large, 120.0)) << w_large.mean();
  EXPECT_NEAR(w_large.variance(), 120.0, 5.0);
}

TEST(Poisson, ZeroMean) {
  Rng rng(13);
  EXPECT_EQ(poisson(rng, 0.0), 0u);
  EXPECT_EQ(poisson(rng, -1.0), 0u);
}

// ---------- sample_without_replacement ----------

TEST(SampleWithoutReplacement, DistinctAndInRange) {
  Rng rng(14);
  for (int trial = 0; trial < 300; ++trial) {
    auto sample = sample_without_replacement(rng, 50, 10);
    EXPECT_EQ(sample.size(), 10u);
    std::set<std::uint64_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
    for (auto v : sample) EXPECT_LT(v, 50u);
  }
}

TEST(SampleWithoutReplacement, FullDraw) {
  Rng rng(15);
  auto sample = sample_without_replacement(rng, 8, 8);
  std::sort(sample.begin(), sample.end());
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(sample[i], i);
}

TEST(SampleWithoutReplacement, RejectsOversample) {
  Rng rng(16);
  EXPECT_THROW(sample_without_replacement(rng, 3, 4), std::invalid_argument);
}

// ---------- alias table ----------

TEST(AliasTable, MatchesWeights) {
  Rng rng(17);
  const std::vector<double> weights{1.0, 5.0, 2.0, 0.0, 2.0};
  AliasTable table(weights);
  constexpr std::size_t kDraws = 200000;
  std::vector<std::uint64_t> observed(weights.size(), 0);
  for (std::size_t i = 0; i < kDraws; ++i) ++observed[table.sample(rng)];
  EXPECT_EQ(observed[3], 0u);
  const double total = 10.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] == 0.0) continue;
    const double expected = weights[i] / total;
    const auto ci = wilson_ci(observed[i], kDraws, 4.5);
    EXPECT_LE(ci.lo, expected) << "bucket " << i;
    EXPECT_GE(ci.hi, expected) << "bucket " << i;
  }
}

TEST(AliasTable, SingleBucket) {
  Rng rng(18);
  AliasTable table(std::vector<double>{3.0});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.sample(rng), 0u);
}

TEST(AliasTable, RejectsBadWeights) {
  EXPECT_THROW(AliasTable(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{1.0, -2.0}),
               std::invalid_argument);
}

TEST(AliasTable, NonPowerOfTwoSingleDrawMatchesWeights) {
  // The fixed-point-rejection extension: sizes <= 2048 that are NOT powers
  // of two run the single-draw path too. The rejection must leave the
  // accepted slot exactly uniform, so the sampled law still matches the
  // weights.
  Rng rng(22);
  for (const std::size_t size : {3u, 5u, 100u, 1000u, 2047u}) {
    std::vector<double> weights(size);
    for (std::size_t i = 0; i < size; ++i) {
      weights[i] = 1.0 + static_cast<double>(i % 7);
    }
    const double total =
        std::accumulate(weights.begin(), weights.end(), 0.0);
    AliasTable table(weights);
    constexpr std::size_t kDraws = 120000;
    std::vector<std::uint64_t> observed(size, 0);
    for (std::size_t i = 0; i < kDraws; ++i) ++observed[table.sample(rng)];
    // Check a handful of buckets (all of them for small sizes).
    for (std::size_t i = 0; i < size; i += std::max<std::size_t>(1, size / 8)) {
      const double expected = weights[i] / total;
      const auto ci = wilson_ci(observed[i], kDraws, 4.5);
      EXPECT_LE(ci.lo, expected) << "size " << size << " bucket " << i;
      EXPECT_GE(ci.hi, expected) << "size " << size << " bucket " << i;
    }
  }
}

TEST(AliasTable, ForceTwoDrawReproducesLegacyStream) {
  // The two-draw form must remain bit-available: a forced table consumes
  // the RNG exactly like the pre-single-draw implementation (one
  // uniform_below + one uniform01 per draw).
  const std::vector<double> weights{1.0, 5.0, 2.0, 0.0, 2.0};
  AliasTable forced(weights);
  forced.set_force_two_draw(true);
  Rng rng_forced(23);
  Rng rng_manual(23);
  for (int i = 0; i < 2000; ++i) {
    // Replicate the legacy RNG consumption by hand on a lock-stepped RNG.
    const std::size_t drawn = forced.sample(rng_forced);
    (void)rng_manual.uniform_below(weights.size());
    (void)rng_manual.uniform01();
    // Same stream position consumed: the RNGs must stay in lock step.
    EXPECT_EQ(rng_forced(), rng_manual());
    EXPECT_LT(drawn, weights.size());
    EXPECT_NE(drawn, 3u);  // zero-weight slot never drawn
    ASSERT_EQ(rng_forced(), rng_manual());
  }
  // The override is sticky across rebuilds.
  forced.rebuild(weights);
  Rng a(24), b(24);
  (void)forced.sample(a);
  (void)b.uniform_below(weights.size());
  (void)b.uniform01();
  EXPECT_EQ(a(), b());
}

TEST(IncrementalCountAlias, SyncMatchesFreshReset) {
  // Fuzz the determinism contract: after ANY sequence of syncs, the
  // support list and alias table are bit-identical to a fresh reset over
  // the same counts (operator== on AliasTable is byte-for-byte).
  Rng rng(25);
  constexpr std::size_t kSlots = 24;
  std::vector<std::uint64_t> counts(kSlots, 0);
  counts[0] = 50;  // positive total for the initial reset
  IncrementalCountAlias incremental;
  incremental.reset(counts);
  for (int step = 0; step < 400; ++step) {
    // Random evolution with frequent 0 <-> positive transitions and
    // occasional no-op rounds (the skip-the-rebuild path).
    if (rng.uniform_below(8) != 0) {
      const std::size_t edits = 1 + rng.uniform_below(4);
      for (std::size_t e = 0; e < edits; ++e) {
        const std::size_t slot = rng.uniform_below(kSlots);
        switch (rng.uniform_below(3)) {
          case 0: counts[slot] = 0; break;
          case 1: counts[slot] = 1 + rng.uniform_below(5); break;
          default: counts[slot] += rng.uniform_below(100); break;
        }
      }
      // Keep the total positive (the sampler requires it).
      bool any = false;
      for (const auto c : counts) any = any || c > 0;
      if (!any) counts[rng.uniform_below(kSlots)] = 7;
    }
    incremental.sync(counts);

    IncrementalCountAlias fresh;
    fresh.reset(counts);
    ASSERT_TRUE(std::ranges::equal(incremental.support(), fresh.support()))
        << "support diverged at step " << step;
    ASSERT_TRUE(incremental.table() == fresh.table())
        << "alias table diverged at step " << step;
  }
}

TEST(IncrementalCountAlias, SamplesCountLaw) {
  Rng rng(26);
  const std::vector<std::uint64_t> counts{10, 0, 30, 0, 60};
  IncrementalCountAlias alias;
  alias.reset(counts);
  EXPECT_EQ(alias.num_slots(), 5u);
  EXPECT_EQ(alias.support_size(), 3u);
  constexpr std::size_t kDraws = 200000;
  std::vector<std::uint64_t> observed(counts.size(), 0);
  for (std::size_t i = 0; i < kDraws; ++i) ++observed[alias.sample(rng)];
  EXPECT_EQ(observed[1], 0u);
  EXPECT_EQ(observed[3], 0u);
  for (const std::size_t i : {0u, 2u, 4u}) {
    const double expected = static_cast<double>(counts[i]) / 100.0;
    const auto ci = wilson_ci(observed[i], kDraws, 4.5);
    EXPECT_LE(ci.lo, expected) << "bucket " << i;
    EXPECT_GE(ci.hi, expected) << "bucket " << i;
  }
}

TEST(IncrementalCountAlias, RejectsEmptySupport) {
  IncrementalCountAlias alias;
  EXPECT_THROW(alias.reset(std::vector<std::uint64_t>{0, 0, 0}),
               std::invalid_argument);
}

// ---------- Fenwick sampler ----------

TEST(FenwickSampler, CountsAndTotal) {
  const std::vector<std::uint64_t> counts{3, 0, 7, 1};
  FenwickSampler f(counts);
  EXPECT_EQ(f.total(), 11u);
  for (std::size_t i = 0; i < counts.size(); ++i)
    EXPECT_EQ(f.count(i), counts[i]);
}

TEST(FenwickSampler, AddUpdates) {
  FenwickSampler f(std::vector<std::uint64_t>{2, 2, 2});
  f.add(0, -1);
  f.add(2, +5);
  EXPECT_EQ(f.count(0), 1u);
  EXPECT_EQ(f.count(2), 7u);
  EXPECT_EQ(f.total(), 10u);
  EXPECT_THROW(f.add(1, -3), std::invalid_argument);
}

TEST(FenwickSampler, SamplesProportionally) {
  Rng rng(19);
  const std::vector<std::uint64_t> counts{10, 0, 30, 60};
  FenwickSampler f(counts);
  constexpr std::size_t kDraws = 200000;
  std::vector<std::uint64_t> observed(counts.size(), 0);
  for (std::size_t i = 0; i < kDraws; ++i) ++observed[f.sample(rng)];
  EXPECT_EQ(observed[1], 0u);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double expected = static_cast<double>(counts[i]) / 100.0;
    const auto ci = wilson_ci(observed[i], kDraws, 4.5);
    EXPECT_LE(ci.lo, expected) << "bucket " << i;
    EXPECT_GE(ci.hi, expected) << "bucket " << i;
  }
}

TEST(FenwickSampler, SampleAfterUpdateRespectsNewWeights) {
  Rng rng(20);
  FenwickSampler f(std::vector<std::uint64_t>{5, 5});
  f.add(0, -5);  // all mass on bucket 1
  for (int i = 0; i < 200; ++i) EXPECT_EQ(f.sample(rng), 1u);
}

TEST(FenwickSampler, EmptyThrows) {
  FenwickSampler f(std::vector<std::uint64_t>{0, 0});
  Rng rng(21);
  EXPECT_THROW(f.sample(rng), std::logic_error);
}

TEST(Compositions, CountMatchesStarsAndBars) {
  EXPECT_EQ(num_compositions(0, 3), 1u);   // the all-zero histogram
  EXPECT_EQ(num_compositions(3, 1), 1u);
  EXPECT_EQ(num_compositions(3, 4), 20u);  // C(6,3)
  EXPECT_EQ(num_compositions(5, 16), 15504u);  // C(20,5)
  // Overflow saturates instead of wrapping.
  EXPECT_EQ(num_compositions(40, 1u << 20),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(Compositions, EnumerationIsExactAndExhaustive) {
  std::vector<std::vector<std::uint32_t>> seen;
  for_each_composition(3, 3, [&](std::span<const std::uint32_t> c) {
    EXPECT_EQ(c.size(), 3u);
    EXPECT_EQ(c[0] + c[1] + c[2], 3u);
    seen.emplace_back(c.begin(), c.end());
  });
  EXPECT_EQ(seen.size(), num_compositions(3, 3));  // C(5,3) = 10
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

}  // namespace
}  // namespace consensus::support
