#include "consensus/api/sweep_spec.hpp"

#include <stdexcept>

#include "consensus/api/spec_detail.hpp"

namespace consensus::api {

namespace {

constexpr std::string_view kErrorPrefix = "SweepSpec";

[[noreturn]] void sweep_error(const std::string& what) {
  detail::spec_error(kErrorPrefix, what);
}

void check_known_keys(const support::Json& json,
                      std::initializer_list<const char*> known,
                      const char* where) {
  detail::check_known_keys(json, known, where, kErrorPrefix);
}

/// Top-level merge of a partial-spec override onto a full spec object:
/// overridden fields are replaced wholesale (an {"init": ...} override
/// replaces the entire init object).
void apply_override(support::Json& merged, const support::Json& override_obj) {
  for (const std::string& key : override_obj.keys()) {
    merged.set(key, *override_obj.find(key));
  }
}

/// Human-readable tag for one axis point: "k=8" when the override is a
/// single scalar field, "<axis>[<i>]" otherwise.
std::string point_label(const SweepAxis& axis, std::size_t i) {
  const support::Json& value = axis.points[i];
  const std::vector<std::string> keys = value.keys();
  if (keys.size() == 1) {
    const support::Json& field = *value.find(keys[0]);
    if (field.is_string()) return keys[0] + "=" + field.as_string();
    if (field.is_number() || field.is_bool()) {
      return keys[0] + "=" + field.dump();
    }
  }
  return axis.name + "[" + std::to_string(i) + "]";
}

}  // namespace

std::string_view to_string(ExpandMode mode) noexcept {
  switch (mode) {
    case ExpandMode::kCartesian: return "cartesian";
    case ExpandMode::kZip: return "zip";
  }
  return "cartesian";
}

ExpandMode expand_mode_from_string(std::string_view name) {
  if (name == "cartesian") return ExpandMode::kCartesian;
  if (name == "zip") return ExpandMode::kZip;
  sweep_error("unknown expand mode '" + std::string(name) +
              "' (cartesian|zip)");
}

std::size_t SweepSpec::num_points() const {
  if (axes.empty()) return 1;
  if (expand == ExpandMode::kZip) return axes.front().points.size();
  std::size_t total = 1;
  for (const SweepAxis& axis : axes) {
    if (axis.points.empty()) return 0;
    if (total > 10'000'000 / axis.points.size()) {
      sweep_error("cartesian grid exceeds 10M points");
    }
    total *= axis.points.size();
  }
  return total;
}

void SweepSpec::validate() const {
  // Expansion checks the grid shape first and then every merged cell.
  (void)expand_points();
}

std::vector<SweepPoint> SweepSpec::expand_points() const {
  // Shape checks up front: expansion indexes axes by the decomposed flat
  // index, so a malformed grid must fail loudly here, never out-of-bounds.
  if (replications == 0) sweep_error("replications must be positive");
  for (const SweepAxis& axis : axes) {
    if (axis.name.empty()) sweep_error("axis name must be non-empty");
    if (axis.points.empty()) {
      sweep_error("axis '" + axis.name + "' has no points");
    }
    for (const support::Json& point : axis.points) {
      if (!point.is_object()) {
        sweep_error("axis '" + axis.name +
                    "' points must be partial-spec JSON objects");
      }
    }
  }
  if (expand == ExpandMode::kZip) {
    for (const SweepAxis& axis : axes) {
      if (axis.points.size() != axes.front().points.size()) {
        sweep_error("zip axes must have equal lengths ('" +
                    axes.front().name + "' has " +
                    std::to_string(axes.front().points.size()) + ", '" +
                    axis.name + "' has " +
                    std::to_string(axis.points.size()) + ")");
      }
    }
  }

  const std::size_t total = num_points();
  const support::Json base_json = base.to_json();
  std::vector<SweepPoint> points;
  points.reserve(total);
  for (std::size_t index = 0; index < total; ++index) {
    // Per-axis point indices: zip advances all axes together; cartesian
    // decomposes the flat index with the LAST axis varying fastest.
    std::vector<std::size_t> axis_index(axes.size(), index);
    if (expand == ExpandMode::kCartesian) {
      std::size_t rest = index;
      for (std::size_t a = axes.size(); a-- > 0;) {
        axis_index[a] = rest % axes[a].points.size();
        rest /= axes[a].points.size();
      }
    }

    SweepPoint point;
    point.index = index;
    support::Json merged = base_json;
    for (std::size_t a = 0; a < axes.size(); ++a) {
      const support::Json& override_obj = axes[a].points[axis_index[a]];
      apply_override(merged, override_obj);
      if (!point.label.empty()) point.label += ",";
      point.label += point_label(axes[a], axis_index[a]);
    }
    if (point.label.empty()) point.label = "base";
    try {
      point.spec = ScenarioSpec::from_json(merged);
    } catch (const std::invalid_argument& e) {
      sweep_error("point " + std::to_string(index) + " (" + point.label +
                  ") is invalid: " + e.what());
    }
    points.push_back(std::move(point));
  }
  return points;
}

std::vector<std::string> SweepSpec::labels() const {
  std::vector<SweepPoint> points = expand_points();
  std::vector<std::string> out;
  out.reserve(points.size());
  for (SweepPoint& point : points) out.push_back(std::move(point.label));
  return out;
}

support::Json SweepSpec::to_json() const {
  auto json = support::Json::object();
  if (!name.empty()) json.set("name", name);
  json.set("base", base.to_json());
  if (!axes.empty()) {
    auto axes_json = support::Json::array();
    for (const SweepAxis& axis : axes) {
      auto axis_json = support::Json::object();
      axis_json.set("name", axis.name);
      auto points_json = support::Json::array();
      for (const support::Json& point : axis.points) points_json.push(point);
      axis_json.set("points", std::move(points_json));
      axes_json.push(std::move(axis_json));
    }
    json.set("axes", std::move(axes_json));
  }
  json.set("expand", std::string(to_string(expand)))
      .set("replications", static_cast<std::uint64_t>(replications))
      .set("seed", seed);
  return json;
}

std::string SweepSpec::to_json_text(int indent) const {
  return to_json().dump(indent);
}

SweepSpec SweepSpec::from_json(const support::Json& json) {
  if (!json.is_object()) sweep_error("top-level JSON value must be an object");
  check_known_keys(
      json, {"name", "base", "axes", "expand", "replications", "seed"},
      "sweep");

  SweepSpec spec;
  if (const auto* v = json.find("name")) spec.name = v->as_string();
  if (const auto* v = json.find("base")) {
    spec.base = ScenarioSpec::from_json(*v);
  }
  if (const auto* v = json.find("axes")) {
    for (std::size_t a = 0; a < v->size(); ++a) {
      const support::Json& axis_json = v->at(a);
      check_known_keys(axis_json, {"name", "points"}, "axis");
      SweepAxis axis;
      if (const auto* f = axis_json.find("name")) axis.name = f->as_string();
      if (const auto* f = axis_json.find("points")) {
        for (std::size_t i = 0; i < f->size(); ++i) {
          axis.points.push_back(f->at(i));
        }
      }
      spec.axes.push_back(std::move(axis));
    }
  }
  if (const auto* v = json.find("expand")) {
    spec.expand = expand_mode_from_string(v->as_string());
  }
  if (const auto* v = json.find("replications")) {
    spec.replications = static_cast<std::size_t>(v->as_uint());
  }
  if (const auto* v = json.find("seed")) spec.seed = v->as_uint();

  spec.validate();
  return spec;
}

SweepSpec SweepSpec::from_json_text(const std::string& text) {
  return from_json(support::Json::parse(text));
}

}  // namespace consensus::api
