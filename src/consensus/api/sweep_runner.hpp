// SweepRunner: executes a declarative SweepSpec end-to-end — expands the
// grid, builds one Simulation per point (engine auto-selection per point,
// so a single sweep can span counting, agent, async, and pairwise
// backends), and drives every (point, replication) trial on an exp::Sweep
// pool, streaming each finished trial through the ResultSink pipeline.
//
// Resume: pass an exp::SweepResume loaded from a prior run's JSONL
// manifest and completed trials are replayed instead of re-run. Because
// trial seeds are pure functions of (spec.seed, point, replication) and
// the manifest round-trips results losslessly, an interrupted-then-resumed
// sweep produces byte-identical aggregate artifacts to an uninterrupted
// one (tests assert this for all four engines).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "consensus/api/simulation.hpp"
#include "consensus/api/sweep_spec.hpp"
#include "consensus/experiment/shard.hpp"
#include "consensus/experiment/sink.hpp"

namespace consensus::api {

class SweepRunner {
 public:
  /// Validates the spec, expands the grid, and builds the per-point
  /// Simulations. Throws std::invalid_argument on an inconsistent spec.
  /// `pools` (optional) supplies warm engine pools to every per-point
  /// Simulation — the serving daemon's resident-worker path.
  explicit SweepRunner(SweepSpec spec, EnginePoolProvider* pools = nullptr);

  const SweepSpec& spec() const noexcept { return spec_; }
  const std::vector<SweepPoint>& points() const noexcept { return points_; }
  std::vector<std::string> labels() const;
  std::size_t num_trials() const noexcept {
    return points_.size() * spec_.replications;
  }

  /// Resolved backend per grid point (useful for per-engine metrics).
  std::vector<EngineChoice> engine_kinds() const;

  /// Cooperative cancellation/deadline for run(): the token is polled per
  /// round inside every trial (forwarded to each per-point Simulation) and
  /// per trial by the sweep harness. Once fired, run() throws
  /// support::Cancelled after the pool drains; interrupted trials are
  /// discarded, never emitted to sinks, so a manifest written up to that
  /// point is a clean completed-trial prefix fit for resume. The token must
  /// outlive run(); pass nullptr to detach.
  void set_cancel_token(const support::CancelToken* token) noexcept;

  /// Runs the whole grid. `threads`: sweep-pool width (0 = hardware
  /// concurrency; separate from each Simulation's engine pool). Each
  /// finished trial streams through `sinks`; `resume` replays a prior
  /// manifest. Returns deterministic per-point aggregates (identical for
  /// every thread count and for resumed runs).
  ///
  /// `shard` restricts execution to the points the plan owns (stable
  /// label-hash partition, see exp::ShardPlan): non-owned points are
  /// neither run nor emitted, and aggregate to empty PointStats. N workers
  /// running shards 0/N..N-1/N emit disjoint manifests whose union is
  /// exactly the unsharded manifest — merge with exp::merge_manifests.
  std::vector<exp::PointStats> run(
      std::size_t threads = 0,
      const std::vector<exp::ResultSink*>& sinks = {},
      const exp::SweepResume* resume = nullptr,
      const exp::ShardPlan* shard = nullptr) const;

 private:
  SweepSpec spec_;
  std::vector<SweepPoint> points_;
  std::vector<Simulation> sims_;  // one per point, trial-shared, const use
  const support::CancelToken* cancel_ = nullptr;
};

}  // namespace consensus::api
