#include "consensus/graph/graph.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace consensus::graph {

std::vector<std::uint64_t> sbm_block_offsets(std::uint64_t n,
                                             std::uint64_t blocks) {
  if (blocks == 0 || blocks > n)
    throw std::invalid_argument("sbm_block_offsets: need 1 <= blocks <= n");
  const std::uint64_t base = n / blocks;
  const std::uint64_t rem = n % blocks;
  std::vector<std::uint64_t> offsets(blocks + 1);
  offsets[0] = 0;
  for (std::uint64_t b = 0; b < blocks; ++b)
    offsets[b + 1] = offsets[b] + base + (b < rem ? 1 : 0);
  return offsets;
}

std::vector<double> sbm_block_weights(std::span<const std::uint64_t> offsets,
                                      double intra_p, double inter_p) {
  if (offsets.size() < 2)
    throw std::invalid_argument("sbm_block_weights: need >= 1 block");
  const std::size_t blocks = offsets.size() - 1;
  std::vector<double> weights(blocks * blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    for (std::size_t t = 0; t < blocks; ++t) {
      const auto size_t_block =
          static_cast<double>(offsets[t + 1] - offsets[t]);
      weights[b * blocks + t] = size_t_block * (b == t ? intra_p : inter_p);
    }
  }
  return weights;
}

Graph Graph::complete_with_self_loops(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("Graph: n must be positive");
  Graph g;
  g.n_ = n;
  g.kind_ = Kind::kCompleteSelfLoops;
  return g;
}

Graph Graph::complete_without_self_loops(std::uint64_t n) {
  if (n < 2)
    throw std::invalid_argument(
        "Graph: complete graph without self-loops needs n >= 2");
  Graph g;
  g.n_ = n;
  g.kind_ = Kind::kCompleteOpen;
  return g;
}

Graph Graph::from_edges(std::uint64_t n,
                        std::span<const std::pair<Vertex, Vertex>> edges) {
  if (n == 0) throw std::invalid_argument("Graph: n must be positive");
  Graph g;
  g.n_ = n;
  g.kind_ = Kind::kCsr;
  std::vector<std::uint64_t> deg(n, 0);
  for (auto [u, v] : edges) {
    if (u >= n || v >= n)
      throw std::invalid_argument("Graph: edge endpoint out of range");
    ++deg[u];
    if (u != v) ++deg[v];
  }
  g.offsets_.assign(n + 1, 0);
  for (std::uint64_t v = 0; v < n; ++v) g.offsets_[v + 1] = g.offsets_[v] + deg[v];
  g.adjacency_.resize(g.offsets_[n]);
  std::vector<std::uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (auto [u, v] : edges) {
    g.adjacency_[cursor[u]++] = v;
    if (u != v) g.adjacency_[cursor[v]++] = u;
  }
  return g;
}

Graph Graph::implicit_random_regular(std::uint64_t n, std::uint64_t degree,
                                     std::uint64_t seed) {
  if (n == 0) throw std::invalid_argument("Graph: n must be positive");
  if (degree == 0)
    throw std::invalid_argument("Graph: implicit regular needs degree >= 1");
  Graph g;
  g.n_ = n;
  g.kind_ = Kind::kImplicitRegular;
  g.seed_ = seed;
  g.param_ = degree;
  return g;
}

Graph Graph::implicit_sbm(std::uint64_t n, std::uint64_t blocks,
                          double intra_p, double inter_p) {
  if (!(intra_p > 0.0) || intra_p > 1.0)
    throw std::invalid_argument("Graph: SBM intra_p must be in (0, 1]");
  if (!(inter_p >= 0.0) || inter_p > 1.0)
    throw std::invalid_argument("Graph: SBM inter_p must be in [0, 1]");
  Graph g;
  g.n_ = n;
  g.kind_ = Kind::kImplicitSbm;
  g.block_offsets_ = sbm_block_offsets(n, blocks);  // validates 1<=B<=n
  g.base_ = n / blocks;
  g.rem_ = n % blocks;
  g.intra_p_ = intra_p;
  g.inter_p_ = inter_p;
  const std::vector<double> weights =
      sbm_block_weights(g.block_offsets_, intra_p, inter_p);
  g.block_rows_.resize(blocks);
  for (std::uint64_t b = 0; b < blocks; ++b) {
    g.block_rows_[b].rebuild(
        std::span<const double>(weights.data() + b * blocks, blocks));
  }
  return g;
}

Graph Graph::implicit_configuration_model(const DegreeHistogram& histogram,
                                          std::uint64_t seed) {
  histogram.validate();
  Graph g;
  g.n_ = histogram.total_vertices();
  g.kind_ = Kind::kImplicitConfigModel;
  g.seed_ = seed;
  g.class_offsets_ = histogram.vertex_offsets();
  g.class_stub_offsets_ = histogram.stub_offsets();
  g.class_degrees_ = histogram.degrees;
  return g;
}

Graph Graph::implicit_configuration_model_annealed(
    const DegreeHistogram& histogram) {
  histogram.validate();
  Graph g;
  g.n_ = histogram.total_vertices();
  g.kind_ = Kind::kImplicitConfigModelAnnealed;
  g.class_offsets_ = histogram.vertex_offsets();
  g.class_stub_offsets_ = histogram.stub_offsets();
  g.class_degrees_ = histogram.degrees;
  return g;
}

std::uint64_t Graph::degree(Vertex v) const {
  if (v >= n_) throw std::out_of_range("Graph::degree: vertex out of range");
  switch (kind_) {
    case Kind::kCompleteSelfLoops:
      return n_;
    case Kind::kCompleteOpen:
      return n_ - 1;
    case Kind::kImplicitRegular:
      return param_;
    case Kind::kImplicitSbm: {
      // Expected degree of v's block: sum of row-b edge mass.
      const std::size_t b = block_of(v);
      double mass = 0.0;
      for (std::size_t t = 0; t + 1 < block_offsets_.size(); ++t) {
        mass += static_cast<double>(block_offsets_[t + 1] - block_offsets_[t]) *
                (b == t ? intra_p_ : inter_p_);
      }
      return static_cast<std::uint64_t>(mass);
    }
    case Kind::kImplicitConfigModel:
    case Kind::kImplicitConfigModelAnnealed:
      return class_degrees_[degree_class_of(v)];
    case Kind::kCsr:
      break;
  }
  return offsets_[v + 1] - offsets_[v];
}

std::span<const Vertex> Graph::neighbors(Vertex v) const {
  if (kind_ != Kind::kCsr)
    throw std::logic_error(
        "Graph::neighbors: implicit representation has no materialised "
        "adjacency; use random_neighbor");
  if (v >= n_)
    throw std::out_of_range("Graph::neighbors: vertex out of range");
  return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
}

bool Graph::min_degree_positive() const {
  if (kind_ != Kind::kCsr) return true;  // implicit kinds guarantee d >= 1
  for (std::uint64_t v = 0; v < n_; ++v) {
    if (offsets_[v + 1] == offsets_[v]) return false;
  }
  return true;
}

}  // namespace consensus::graph
