// THM27 — Theorem 2.7: the Ω(k) lower bound from the balanced configuration.
//
// Paper claim: from the balanced start, both dynamics need Ω(k) rounds
// (for k up to ~√(n/log n) for 3-Majority and ~n/log n for 2-Choices; for
// larger k 3-Majority's bound caps at the √n plateau). The proof constant
// is C4.5(1) = 9/121 ≈ 0.074 — consensus before 0.074·k rounds has
// vanishing probability. This bench verifies the *minimum* observed
// consensus time across replications stays above a conservative c·k line.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_util.hpp"

using namespace consensus;

namespace {

double min_consensus_rounds(const char* protocol_name, std::uint64_t n,
                            std::uint32_t k, std::size_t reps,
                            std::uint64_t seed) {
  return bench::run_scenario(
             bench::scenario(protocol_name, core::balanced(n, k), seed),
             reps)
      .rounds.min;
}

}  // namespace

int main() {
  const std::uint64_t n = 1 << 14;
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  constexpr double kLowerConstant = 0.05;  // conservative vs paper's 0.074

  exp::ExperimentReport report(
      "THM27",
      "lower bound: min consensus rounds from balanced start (n=16384, 15 "
      "reps)",
      {"dynamics", "k", "min_rounds", "lower_line", "satisfied"},
      "thm27_lower_bound.csv");

  bool all_ok = true;
  for (const char* name : {"3-majority", "2-choices"}) {
    for (std::uint32_t k : {8u, 32u, 128u, 512u}) {
      const double tmin = min_consensus_rounds(name, n, k, 15, 0x2700 + k);
      // 3-Majority's Ω(k) holds for k ≲ √(n/log n) ≈ 41 here; past that the
      // meaningful floor is the min{k,√n} cap. Apply the cap for both
      // (2-Choices' line is k itself in this range).
      const double line =
          std::string_view(name) == "3-majority"
              ? kLowerConstant * std::min<double>(k, sqrt_n)
              : kLowerConstant * k;
      const bool ok = tmin >= line;
      all_ok = all_ok && ok;
      report.add_row({name, std::to_string(k), bench::fmt1(tmin),
                      bench::fmt1(line), ok ? "yes" : "NO"});
    }
  }
  report.add_check(
      "every run respects the Omega(k) lower line with c = 0.05", all_ok);
  return exp::exit_code(report.finish());
}
