// PERF — engine throughput microbenchmarks.
//
// Not a paper artifact: quantifies the cost model that makes the
// reproduction feasible — the O(k)-per-round closed-form and group-batched
// counting paths vs the O(n)-per-round per-vertex paths, and the parallel
// vs serial agent engine. Emits a human table and a machine-readable
// BENCH_perf_engines.json (rounds/sec per engine × protocol × n) so the
// perf trajectory can be tracked across PRs.
//
// Usage:
//   bench_perf_engines [--n-counting=1000000,100000000] [--n-agent=1000000]
//                      [--n-meanfield=1000000,10000000]
//                      [--n-sbm=10000000] [--n-sbm-block=100000000]
//                      [--sbm-blocks=16]
//                      [--n-config-model=10000000]
//                      [--n-config-model-class=100000000]
//                      [--k=16] [--seconds=1.0] [--threads=0]
//                      [--sparse-slots=1000000] [--sparse-alive=1000]
//                      [--enum-threads=8] [--mix-slots=1024]
//                      [--out=BENCH_perf_engines.json]
//
// The generic per-vertex reference path is time-budgeted (at n = 10^8 a
// single per-vertex h-majority round costs seconds), so each measurement
// runs for ~`--seconds` wall time but always at least one round.
//
// Two columns added with the sparse alive-set engine:
//   * counting-sparse vs counting-dense — the same scenarios with and
//     without the alive-set law, at small k (sparse must not be slower)
//     and at k = --sparse-slots with --sparse-alive alive opinions (the
//     k ≈ n plurality regime, where sparse is the whole point);
//   * hmaj-enum:T — h-majority outcome_distribution throughput for
//     h ∈ {7, 9, 11} with a 1-thread vs --enum-threads-wide engine pool
//     (the pool also scales the enumeration budgets, so large h stays on
//     the batched path instead of falling back per-vertex).
//
// Columns added with the mean-field agent fast path:
//   * agent-meanfield vs agent-dense — the agent engine with the
//     count-space alias fast path (spec default) vs the legacy per-vertex
//     dense path (`mean_field_fast_path: false`), serial, at each
//     --n-meanfield size (CI gates meanfield >= dense at n >= 1e6);
//   * hmaj-simd vs hmaj-scalar — the counting engine's h-majority
//     composition integration with the support/simd_kernels vector path
//     enabled vs forced scalar (bit-identical laws, throughput only).
//
// Columns added with the structured-graph fast paths (schema_version 3):
//   * counting-block — the block-counting engine on the annealed SBM
//     ("sbm" topology, --sbm-blocks blocks) at each --n-sbm size and at
//     the --n-sbm-block sizes (default 10^8: rounds are O(B²·a), so n is
//     free and no CSR is ever materialised);
//   * agent-implicit — the agent engine on the SAME annealed SBM via the
//     implicit topology (per-query neighbour sampling, no CSR);
//   * agent-csr — the agent engine on one quenched SBM sample as an
//     explicit CSR (the reference chain; CI gates counting-block >=
//     agent-csr at the shared smoke point).
//   The SBM probabilities are degree-targeted (~8 intra + ~2 inter edges
//   per vertex at every n) so the explicit CSR stays materialisable.
//
// Columns added with the degree-class engine (schema_version 4):
//   * counting-degree — the degree-class counting engine on the annealed
//     power-law configuration model at each --n-config-model size and at
//     the --n-config-model-class sizes (default 10^8: rounds are O(D·a),
//     n is free, no CSR);
//   * agent-implicit-cm — the agent engine on the quenched implicit
//     configuration model (per-query stub re-derivation, no CSR);
//   * agent-csr-cm — the agent engine on one quenched stub-matching
//     sample as an explicit CSR (the reference chain; CI gates
//     counting-degree >= agent-csr-cm at the shared smoke point).
//   Schema 4 also fixes thread provenance: top-level `hardware_threads`
//   is the true std::thread::hardware_concurrency(), and every row
//   carries the pool width it ACTUALLY ran on in `threads`.
//
// Columns added with the multi-ISA kernel registry (schema_version 5):
//   * block-mix-simd vs block-mix-scalar — the block engine's phase-1
//     mixing saxpy (support::mixture_accumulate, B² calls per round) plus
//     the per-destination 3-majority law assembly
//     (core::assemble_majority_mixture), at the engine's exact call shape
//     but isolated from phase-2 multinomial sampling (which dominates a
//     full step and would bury the kernel signal). --mix-slots sets the
//     slot width (default 1024, L1-resident);
//   * degree-mix-simd vs degree-mix-scalar — the same pair for the
//     degree-class engine's shared-q accumulation (one saxpy + one law
//     assembly per power-law degree class per round).
//   Schema 5 provenance: top-level `simd_isa` is the registry's active
//   lane (CONSENSUS_SIMD pins it), rows carry the vector kernel they
//   exercise in `kernel`, and `denormal_ftz` records whether the
//   CONSENSUS_DENORMAL_FTZ=1 opt-in armed support::ScopedDenormalGuard
//   (default off — FTZ/DAZ is excluded from every bit-identity contract).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "consensus/api/simulation.hpp"
#include "consensus/core/async_engine.hpp"
#include "consensus/core/mixture_sampler.hpp"
#include "consensus/graph/degree_histogram.hpp"
#include "consensus/support/denormals.hpp"
#include "consensus/support/flags.hpp"
#include "consensus/support/json.hpp"
#include "consensus/support/simd_kernels.hpp"

using namespace consensus;

namespace {

struct Measurement {
  std::string engine;
  std::string protocol;
  std::uint64_t n = 0;
  std::uint32_t k = 0;
  std::uint64_t rounds = 0;
  double seconds = 0.0;
  double rounds_per_sec = 0.0;
  /// Engine pool width this row actually ran on (1 = serial). Recorded
  /// per row because columns mix widths in one artifact.
  std::size_t threads = 1;
  /// The registry kernel a kernel-pair column exercises ("histogram_term",
  /// "mixture"); empty for whole-engine rows. Schema 5.
  std::string kernel;
};

/// Runs step() repeatedly for ~budget seconds (>= 1 round) and reports the
/// throughput. `step` returns void; `engine` outlives the call.
template <typename StepFn>
Measurement measure(std::string engine, std::string protocol, std::uint64_t n,
                    std::uint32_t k, double budget_seconds, StepFn&& step) {
  using clock = std::chrono::steady_clock;
  Measurement m;
  m.engine = std::move(engine);
  m.protocol = std::move(protocol);
  m.n = n;
  m.k = k;
  const auto start = clock::now();
  for (;;) {
    step();
    ++m.rounds;
    m.seconds = std::chrono::duration<double>(clock::now() - start).count();
    if (m.seconds >= budget_seconds) break;
  }
  m.rounds_per_sec = static_cast<double>(m.rounds) / m.seconds;
  std::printf("%-18s %-14s n=%-12llu k=%-6u %10llu rounds in %7.3fs  %12.3f rounds/s\n",
              m.engine.c_str(), m.protocol.c_str(),
              static_cast<unsigned long long>(m.n), m.k,
              static_cast<unsigned long long>(m.rounds), m.seconds,
              m.rounds_per_sec);
  std::fflush(stdout);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = support::Flags::parse(argc - 1, argv + 1);
  const auto n_counting = flags.get_uint_list(
      "n-counting", {1000000ULL, 100000000ULL});
  const auto n_agent = flags.get_uint_list("n-agent", {1000000ULL});
  const auto n_meanfield =
      flags.get_uint_list("n-meanfield", {1000000ULL, 10000000ULL});
  const auto n_sbm = flags.get_uint_list("n-sbm", {10000000ULL});
  const auto n_sbm_block =
      flags.get_uint_list("n-sbm-block", {100000000ULL});
  const auto sbm_blocks = flags.get_uint("sbm-blocks", 16);
  const auto n_config_model =
      flags.get_uint_list("n-config-model", {10000000ULL});
  const auto n_config_model_class =
      flags.get_uint_list("n-config-model-class", {100000000ULL});
  const auto k = static_cast<std::uint32_t>(flags.get_uint("k", 16));
  const double seconds = flags.get_double("seconds", 1.0);
  const auto threads = static_cast<std::size_t>(flags.get_uint("threads", 0));
  const auto sparse_slots = flags.get_uint("sparse-slots", 1000000);
  const auto sparse_alive = flags.get_uint("sparse-alive", 1000);
  const auto enum_threads =
      static_cast<std::size_t>(flags.get_uint("enum-threads", 8));
  const auto mix_slots =
      static_cast<std::size_t>(flags.get_uint("mix-slots", 1024));
  const std::string out_path =
      flags.get_string("out", "BENCH_perf_engines.json");

  // Opt-in FTZ/DAZ for the whole run (CONSENSUS_DENORMAL_FTZ=1): recorded
  // in the artifact so a flushed run can never masquerade as a
  // bit-identity-contracted one. Default off — the kernels' determinism
  // contract excludes denormal flushing.
  const char* ftz_env = std::getenv("CONSENSUS_DENORMAL_FTZ");
  const bool denormal_ftz =
      ftz_env != nullptr && std::string_view(ftz_env) == "1";
  std::optional<support::ScopedDenormalGuard> ftz_guard;
  if (denormal_ftz) ftz_guard.emplace();

  std::vector<Measurement> results;

  // All engines come out of api::Simulation::make_engine — the bench only
  // describes scenarios and steps the engines manually.
  const auto make_sim = [&](const std::string& protocol, std::uint64_t n,
                            api::EngineChoice engine, bool generic_only,
                            std::size_t engine_threads) {
    api::ScenarioSpec spec;
    spec.protocol = protocol;
    spec.n = n;
    spec.k = k;
    spec.engine = engine;
    spec.generic_only = generic_only;
    spec.engine_threads = engine_threads;
    return api::Simulation::from_spec(spec);
  };

  // --- counting engine: closed-form / batched path per protocol ---------
  const std::vector<std::string> protocols = {
      "3-majority", "2-choices", "voter",
      "undecided",  "median",    "h-majority:3",
      "h-majority:5"};
  for (std::uint64_t n : n_counting) {
    for (const auto& name : protocols) {
      const auto sim =
          make_sim(name, n, api::EngineChoice::kCounting, false, 1);
      const auto engine = sim.make_engine();
      support::Rng rng(1);
      results.push_back(measure("counting", name, n, k, seconds, [&] {
        engine->step(rng);
        // Reset so every measured round sees the same (hard) regime
        // instead of a near-consensus one.
        *engine->mutable_configuration() = sim.initial_configuration();
      }));
    }
    // Per-vertex reference path (what the batched path replaced).
    for (const auto& name : {std::string("h-majority:5"),
                             std::string("median")}) {
      const auto sim =
          make_sim(name, n, api::EngineChoice::kCounting, true, 1);
      const auto engine = sim.make_engine();
      support::Rng rng(2);
      results.push_back(
          measure("counting-generic", name, n, k, seconds, [&] {
            engine->step(rng);
            *engine->mutable_configuration() = sim.initial_configuration();
          }));
    }
  }

  // --- sparse alive-set path vs dense paths -----------------------------
  // Small k, full support: the sparse path must not be slower than the
  // dense paths it shadows (CI gates on this pair).
  for (const auto& name : {std::string("3-majority"), std::string("median"),
                           std::string("h-majority:5")}) {
    for (const bool dense : {false, true}) {
      api::ScenarioSpec spec;
      spec.protocol = name;
      spec.n = 1000000;
      spec.k = k;
      spec.engine = api::EngineChoice::kCounting;
      spec.dense_only = dense;
      const auto sim = api::Simulation::from_spec(spec);
      const auto engine = sim.make_engine();
      support::Rng rng(5);
      results.push_back(measure(dense ? "counting-dense" : "counting-sparse",
                                name, spec.n, k, seconds, [&] {
                                  engine->step(rng);
                                  *engine->mutable_configuration() =
                                      sim.initial_configuration();
                                }));
    }
  }
  // k ≈ n plurality regime (Thm 2.6): --sparse-slots opinion slots with
  // only --sparse-alive of them alive. Dense pays O(k) per round for the
  // closed form; sparse pays O(alive).
  {
    std::vector<std::uint64_t> counts(sparse_slots, 0);
    const std::uint64_t per = 1000;  // population of each alive opinion
    for (std::uint64_t i = 0; i < sparse_alive; ++i) counts[i] = per;
    for (const bool dense : {false, true}) {
      api::ScenarioSpec spec;
      spec.engine = api::EngineChoice::kCounting;
      spec.dense_only = dense;
      spec.protocol = "3-majority";
      spec.set_counts(counts);
      const auto sim = api::Simulation::from_spec(spec);
      const auto engine = sim.make_engine();
      support::Rng rng(6);
      // Resetting every round would copy the k = 10^6-slot vector (8 MB)
      // per step and dominate both paths; reset every 256 rounds instead —
      // alive decays by at most a few opinions in between, so the regime
      // stays pinned at ~sparse_alive alive opinions.
      std::uint64_t steps = 0;
      results.push_back(
          measure(dense ? "counting-dense" : "counting-sparse",
                  "3-majority(a=" + std::to_string(sparse_alive) + ")",
                  spec.n, static_cast<std::uint32_t>(sparse_slots), seconds,
                  [&] {
                    engine->step(rng);
                    if (++steps % 256 == 0) {
                      *engine->mutable_configuration() =
                          sim.initial_configuration();
                    }
                  }));
    }
  }

  // --- h-majority enumeration: 1-thread vs pooled law -------------------
  // n is kept modest: the batched law is independent of n, and when the
  // serial budget declines (h = 11) the fallback is per-vertex — which at
  // huge n would turn one round into minutes.
  for (const unsigned h : {7u, 9u, 11u}) {
    for (const std::size_t pool : {std::size_t{1}, enum_threads}) {
      const auto sim = make_sim("h-majority:" + std::to_string(h), 1000000,
                                api::EngineChoice::kCounting, false, pool);
      const auto engine = sim.make_engine();
      support::Rng rng(7);
      results.push_back(measure("hmaj-enum:" + std::to_string(pool),
                                "h-majority:" + std::to_string(h), 1000000, k,
                                seconds, [&] {
                                  engine->step(rng);
                                  *engine->mutable_configuration() =
                                      sim.initial_configuration();
                                }));
      results.back().threads = pool;
    }
  }

  // --- h-majority composition integration: SIMD vs scalar kernel --------
  // Same scenarios, same laws bit for bit (the scalar fallback mirrors the
  // vector lanes); only the kernel toggles. On hardware without AVX2 both
  // columns run the scalar code and the ratio is ~1.
  for (const unsigned h : {7u, 9u}) {
    for (const bool simd : {false, true}) {
      support::set_simd_kernels_enabled(simd);
      const auto sim = make_sim("h-majority:" + std::to_string(h), 1000000,
                                api::EngineChoice::kCounting, false, 1);
      const auto engine = sim.make_engine();
      support::Rng rng(9);
      results.push_back(measure(simd ? "hmaj-simd" : "hmaj-scalar",
                                "h-majority:" + std::to_string(h), 1000000,
                                k, seconds, [&] {
                                  engine->step(rng);
                                  *engine->mutable_configuration() =
                                      sim.initial_configuration();
                                }));
      results.back().kernel = "histogram_term";
    }
  }
  support::set_simd_kernels_enabled(true);

  // --- count-space mixing kernels: SIMD vs scalar -----------------------
  // The block engine's phase 1 at its exact call shape: B² saxpy
  // accumulations of u64 counts into the destination mixes
  // (support::mixture_accumulate) plus one 3-majority law assembly per
  // destination (core::assemble_majority_mixture — the γ reduction and
  // elementwise map behind outcome_distribution_mixture). Isolated from
  // phase-2 multinomial sampling, which dominates a full step() and would
  // bury the kernel signal. Laws are bit-identical across arms (the
  // scalar mirrors share the vector lanes' operation order); only the
  // kernel toggles. CI gates simd >= 0.9x scalar per pair.
  {
    const std::size_t B = static_cast<std::size_t>(sbm_blocks);
    std::vector<std::uint64_t> mix_sizes(n_sbm.begin(), n_sbm.end());
    mix_sizes.insert(mix_sizes.end(), n_sbm_block.begin(), n_sbm_block.end());
    for (std::uint64_t n : mix_sizes) {
      // Block counts: population n/B per block, spread evenly over the
      // slot width (every slot alive — the dense regime the vector saxpy
      // serves; thin supports take the sparse walk, not this kernel).
      std::vector<std::vector<std::uint64_t>> counts(
          B, std::vector<std::uint64_t>(mix_slots));
      for (std::size_t b = 0; b < B; ++b) {
        const std::uint64_t n_b = n / B;
        for (std::size_t j = 0; j < mix_slots; ++j) {
          counts[b][j] = n_b / mix_slots + (j < n_b % mix_slots ? 1 : 0);
        }
      }
      const double inv_n = 1.0 / static_cast<double>(n);
      std::vector<std::vector<double>> q(B, std::vector<double>(mix_slots));
      std::vector<double> law;
      for (const bool simd : {false, true}) {
        support::set_simd_kernels_enabled(simd);
        results.push_back(measure(
            simd ? "block-mix-simd" : "block-mix-scalar", "3-majority", n,
            static_cast<std::uint32_t>(mix_slots), seconds, [&] {
              for (std::size_t dst = 0; dst < B; ++dst) {
                std::fill(q[dst].begin(), q[dst].end(), 0.0);
                for (std::size_t src = 0; src < B; ++src) {
                  support::mixture_accumulate(q[dst].data(),
                                              counts[src].data(), mix_slots,
                                              inv_n);
                }
                core::assemble_majority_mixture(q[dst], law);
              }
            }));
        results.back().kernel = "mixture";
      }
    }
  }
  // The degree-class engine's phase 1: one SHARED q accumulated over the
  // power-law degree classes (one saxpy per class with the stub-share
  // coefficient), then the per-class law assembly phase 2 runs before any
  // multinomial draw — one assembly per class, same q each time, exactly
  // the engine's call pattern for anonymous rules.
  {
    std::vector<std::uint64_t> mix_sizes(n_config_model.begin(),
                                         n_config_model.end());
    mix_sizes.insert(mix_sizes.end(), n_config_model_class.begin(),
                     n_config_model_class.end());
    for (std::uint64_t n : mix_sizes) {
      const auto hist = graph::DegreeHistogram::power_law(
          n, 2.5, 3, std::min<std::uint64_t>(n, 1024));
      const std::size_t D = hist.num_classes();
      std::vector<std::vector<std::uint64_t>> counts(
          D, std::vector<std::uint64_t>(mix_slots));
      std::vector<double> stub_share(D);
      double total_stubs = 0.0;
      for (std::size_t c = 0; c < D; ++c) {
        const std::uint64_t n_c = hist.class_sizes[c];
        for (std::size_t j = 0; j < mix_slots; ++j) {
          counts[c][j] = n_c / mix_slots + (j < n_c % mix_slots ? 1 : 0);
        }
        total_stubs += static_cast<double>(hist.degrees[c]) *
                       static_cast<double>(n_c);
      }
      for (std::size_t c = 0; c < D; ++c) {
        stub_share[c] = static_cast<double>(hist.degrees[c]) / total_stubs;
      }
      std::vector<double> q(mix_slots);
      std::vector<double> law;
      for (const bool simd : {false, true}) {
        support::set_simd_kernels_enabled(simd);
        results.push_back(measure(
            simd ? "degree-mix-simd" : "degree-mix-scalar", "3-majority", n,
            static_cast<std::uint32_t>(mix_slots), seconds, [&] {
              std::fill(q.begin(), q.end(), 0.0);
              for (std::size_t c = 0; c < D; ++c) {
                support::mixture_accumulate(q.data(), counts[c].data(),
                                            mix_slots, stub_share[c]);
              }
              for (std::size_t c = 0; c < D; ++c) {
                core::assemble_majority_mixture(q, law);
              }
            }));
        results.back().kernel = "mixture";
      }
    }
  }
  support::set_simd_kernels_enabled(true);

  // --- agent engine: mean-field fast path vs legacy dense path ----------
  // Serial on purpose: the pair isolates the sampling representation
  // (count-space alias + fused kernels vs per-vertex array indexing +
  // virtual calls) from thread scaling. CI gates meanfield >= dense at
  // n >= 1e6.
  for (std::uint64_t n : n_meanfield) {
    for (const char* name : {"3-majority", "h-majority:5"}) {
      for (const bool dense : {false, true}) {
        api::ScenarioSpec spec;
        spec.protocol = name;
        spec.n = n;
        spec.k = k;
        spec.engine = api::EngineChoice::kAgent;
        spec.mean_field_fast_path = !dense;
        const auto sim = api::Simulation::from_spec(spec);
        const auto engine = sim.make_engine();
        support::Rng rng(8);
        results.push_back(measure(dense ? "agent-dense" : "agent-meanfield",
                                  name, n, k, seconds,
                                  [&] { engine->step(rng); }));
      }
    }
  }

  // --- structured SBM: block-counting vs agent (implicit / explicit) ----
  const auto sbm_scenario = [&](std::uint64_t n, const char* kind,
                                api::EngineChoice engine) {
    api::ScenarioSpec spec;
    spec.protocol = "3-majority";
    spec.n = n;
    spec.k = k;
    spec.engine = engine;
    api::TopologySpec topo;
    topo.kind = kind;
    topo.blocks = sbm_blocks;
    // Degree-targeted: ~8 expected intra + ~2 expected inter edges per
    // vertex at every n, so the quenched CSR at the explicit smoke point
    // stays materialisable while the structured paths never build one.
    topo.intra_p = std::min(
        1.0, 8.0 * static_cast<double>(sbm_blocks) / static_cast<double>(n));
    topo.inter_p =
        sbm_blocks < 2
            ? 0.0
            : std::min(1.0, 2.0 / (static_cast<double>(n) *
                                   (1.0 - 1.0 / static_cast<double>(
                                                    sbm_blocks))));
    spec.topology = topo;
    return api::Simulation::from_spec(spec);
  };
  for (std::uint64_t n : n_sbm) {
    {
      const auto sim = sbm_scenario(n, "sbm", api::EngineChoice::kBlock);
      const auto engine = sim.make_engine();
      // The block engine exposes no mutable aggregate configuration (its
      // state is per-block); pin the measured regime by restoring the
      // initial EngineState instead — an O(B·k) copy, same order as the
      // round itself.
      const auto init_state = engine->capture_state();
      support::Rng rng(10);
      results.push_back(
          measure("counting-block", "3-majority", n, k, seconds, [&] {
            engine->step(rng);
            engine->restore_state(init_state);
          }));
    }
    {
      const auto sim = sbm_scenario(n, "sbm", api::EngineChoice::kAgent);
      const auto engine = sim.make_engine();
      support::Rng rng(10);
      // No per-round reset: agent rounds are O(n) and measure at most a
      // handful of rounds, far from any regime drift.
      results.push_back(measure("agent-implicit", "3-majority", n, k,
                                seconds, [&] { engine->step(rng); }));
    }
    {
      const auto sim =
          sbm_scenario(n, "sbm-explicit", api::EngineChoice::kAgent);
      const auto engine = sim.make_engine();
      support::Rng rng(10);
      results.push_back(measure("agent-csr", "3-majority", n, k, seconds,
                                [&] { engine->step(rng); }));
    }
  }
  // n-independent headline: the block engine at n = 10^8 (default) — the
  // whole scenario (graph descriptor + engine) never materialises a CSR.
  for (std::uint64_t n : n_sbm_block) {
    const auto sim = sbm_scenario(n, "sbm", api::EngineChoice::kBlock);
    const auto engine = sim.make_engine();
    const auto init_state = engine->capture_state();
    support::Rng rng(11);
    results.push_back(
        measure("counting-block", "3-majority", n, k, seconds, [&] {
          engine->step(rng);
          engine->restore_state(init_state);
        }));
  }

  // --- configuration model: degree-class vs agent (implicit / CSR) ------
  const auto config_model_scenario = [&](std::uint64_t n, const char* kind,
                                         api::EngineChoice engine) {
    api::ScenarioSpec spec;
    spec.protocol = "3-majority";
    spec.n = n;
    spec.k = k;
    spec.engine = engine;
    api::TopologySpec topo;
    topo.kind = kind;
    // Power-law histogram with a mean degree of ~9 (alpha 2.5, d_min 3),
    // comparable to the SBM columns, so the quenched CSR at the explicit
    // smoke point stays materialisable while the structured paths never
    // build one. d_max is capped well below n at every size.
    topo.alpha = 2.5;
    topo.d_min = 3;
    topo.d_max = std::min<std::uint64_t>(n, 1024);
    spec.topology = topo;
    return api::Simulation::from_spec(spec);
  };
  for (std::uint64_t n : n_config_model) {
    {
      const auto sim = config_model_scenario(
          n, "configuration-model-annealed", api::EngineChoice::kDegreeClass);
      const auto engine = sim.make_engine();
      // Like the block engine: no mutable aggregate configuration (state
      // is per degree class); pin the regime by restoring the initial
      // EngineState — an O(D·k) copy, same order as the round itself.
      const auto init_state = engine->capture_state();
      support::Rng rng(12);
      results.push_back(
          measure("counting-degree", "3-majority", n, k, seconds, [&] {
            engine->step(rng);
            engine->restore_state(init_state);
          }));
    }
    {
      const auto sim = config_model_scenario(n, "configuration-model",
                                             api::EngineChoice::kAgent);
      const auto engine = sim.make_engine();
      support::Rng rng(12);
      results.push_back(measure("agent-implicit-cm", "3-majority", n, k,
                                seconds, [&] { engine->step(rng); }));
    }
    {
      const auto sim = config_model_scenario(
          n, "configuration-model-explicit", api::EngineChoice::kAgent);
      const auto engine = sim.make_engine();
      support::Rng rng(12);
      results.push_back(measure("agent-csr-cm", "3-majority", n, k, seconds,
                                [&] { engine->step(rng); }));
    }
  }
  // n-independent headline: the degree-class engine at n = 10^8 (default)
  // — the whole scenario (degree histogram + engine) never materialises a
  // CSR or even a per-vertex array.
  for (std::uint64_t n : n_config_model_class) {
    const auto sim = config_model_scenario(
        n, "configuration-model-annealed", api::EngineChoice::kDegreeClass);
    const auto engine = sim.make_engine();
    const auto init_state = engine->capture_state();
    support::Rng rng(13);
    results.push_back(
        measure("counting-degree", "3-majority", n, k, seconds, [&] {
          engine->step(rng);
          engine->restore_state(init_state);
        }));
  }

  // --- agent engine: serial vs thread pool ------------------------------
  const std::size_t agent_pool_width =
      threads == 0 ? static_cast<std::size_t>(std::max(
                         1u, std::thread::hardware_concurrency()))
                   : threads;
  for (std::uint64_t n : n_agent) {
    {
      const auto sim =
          make_sim("3-majority", n, api::EngineChoice::kAgent, false, 1);
      const auto engine = sim.make_engine();
      support::Rng rng(3);
      results.push_back(measure("agent-serial", "3-majority", n, k, seconds,
                                [&] { engine->step(rng); }));
    }
    {
      const auto sim = make_sim("3-majority", n, api::EngineChoice::kAgent,
                                false, threads);
      const auto engine = sim.make_engine();
      support::Rng rng(3);
      results.push_back(
          measure("agent-parallel:" + std::to_string(agent_pool_width),
                  "3-majority", n, k, seconds, [&] { engine->step(rng); }));
      results.back().threads = agent_pool_width;
    }
  }

  // --- async engine: O(log k) tick (ticks/sec, one "round" = one tick) --
  for (std::uint64_t n : n_agent) {
    const auto sim =
        make_sim("3-majority", n, api::EngineChoice::kAsync, false, 1);
    const auto owned = sim.make_engine();
    auto* engine = dynamic_cast<core::AsyncEngine*>(owned.get());
    support::Rng rng(4);
    results.push_back(measure("async-tick", "3-majority", n, k, seconds,
                              [&] { engine->tick(rng); }));
  }

  // --- machine-readable artifact ----------------------------------------
  auto json = support::Json::object();
  json.set("bench", "perf_engines");
  // Version the artifact so tools/check_perf_smoke.py can evolve its gates
  // without breaking on older JSONs.
  json.set("schema_version", std::uint64_t{5});
  json.set("k", static_cast<std::uint64_t>(k));
  json.set("sbm_blocks", sbm_blocks);
  json.set("mix_slots", static_cast<std::uint64_t>(mix_slots));
  // Provenance, fixed in schema 4: `hardware_threads` is what the machine
  // HAS (std::thread::hardware_concurrency), `agent_pool_threads` what the
  // agent-parallel column USED (a --threads override counts), and every
  // row carries its own pool width in `threads`. Schema 3 conflated the
  // first two, which made artifacts from --threads-overridden 1-core CI
  // containers unreadable.
  json.set("hardware_threads",
           static_cast<std::uint64_t>(
               std::max(1u, std::thread::hardware_concurrency())));
  json.set("agent_pool_threads",
           static_cast<std::uint64_t>(agent_pool_width));
  json.set("enum_threads", static_cast<std::uint64_t>(enum_threads));
  json.set("simd_available", support::simd_kernels_available());
  // Schema 5 provenance: the lane every vector-kernel call actually ran on
  // (CONSENSUS_SIMD pins it; "scalar" on hardware without any lane), plus
  // whether the FTZ/DAZ opt-in was armed for this run.
  json.set("simd_isa",
           std::string(support::to_string(support::active_simd_isa())));
  json.set("denormal_ftz", denormal_ftz);
  auto rows = support::Json::array();
  for (const auto& m : results) {
    auto row = support::Json::object();
    row.set("engine", m.engine);
    row.set("protocol", m.protocol);
    row.set("n", m.n);
    row.set("k", static_cast<std::uint64_t>(m.k));
    row.set("rounds", m.rounds);
    row.set("seconds", m.seconds);
    row.set("rounds_per_sec", m.rounds_per_sec);
    row.set("threads", static_cast<std::uint64_t>(m.threads));
    if (!m.kernel.empty()) row.set("kernel", m.kernel);
    rows.push(std::move(row));
  }
  json.set("results", std::move(rows));
  std::ofstream out(out_path);
  out << json.dump(2) << "\n";
  out.flush();
  if (!out.good()) {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu measurements)\n", out_path.c_str(),
              results.size());
  return 0;
}
