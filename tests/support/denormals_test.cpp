// support/denormals: the FTZ/DAZ guard is strictly opt-in. Default test
// runs must NEVER flush (the bit-identity contracts of rng.hpp and
// simd_kernels.hpp assume IEEE-complete arithmetic), the guard must
// restore the caller's FP environment exactly, and nesting must unwind.
#include "consensus/support/denormals.hpp"

#include <gtest/gtest.h>

namespace consensus::support {
namespace {

TEST(Denormals, DefaultRunsNeverFlush) {
  // The pin the bit-identity suite relies on: nothing in the library (or
  // the test harness) arms FTZ/DAZ on its own. If this fails, some path
  // engaged ScopedDenormalGuard outside the CONSENSUS_DENORMAL_FTZ bench
  // opt-in — a contract violation, not a tuning choice.
  EXPECT_FALSE(ScopedDenormalGuard::flush_active());
  // And subnormal arithmetic actually behaves IEEE-complete here: a
  // subnormal halved is still nonzero.
  volatile double tiny = 5e-310;
  volatile double half = tiny * 0.5;
  EXPECT_NE(half, 0.0);
}

TEST(Denormals, GuardSetsAndRestores) {
  if (!ScopedDenormalGuard::supported()) {
    GTEST_SKIP() << "no FTZ/DAZ control on this target (guard is a no-op)";
  }
  EXPECT_FALSE(ScopedDenormalGuard::flush_active());
  {
    ScopedDenormalGuard guard;
    EXPECT_TRUE(ScopedDenormalGuard::flush_active());
    // Under FTZ a subnormal product flushes to zero — the observable
    // arithmetic change that justifies keeping the guard off contracted
    // paths.
    volatile double tiny = 5e-310;
    volatile double half = tiny * 0.5;
    EXPECT_EQ(half, 0.0);
  }
  EXPECT_FALSE(ScopedDenormalGuard::flush_active());
}

TEST(Denormals, GuardsNest) {
  if (!ScopedDenormalGuard::supported()) {
    GTEST_SKIP() << "no FTZ/DAZ control on this target (guard is a no-op)";
  }
  {
    ScopedDenormalGuard outer;
    {
      ScopedDenormalGuard inner;
      EXPECT_TRUE(ScopedDenormalGuard::flush_active());
    }
    // The inner guard restores the OUTER guard's environment (flush still
    // on), not the pristine one.
    EXPECT_TRUE(ScopedDenormalGuard::flush_active());
  }
  EXPECT_FALSE(ScopedDenormalGuard::flush_active());
}

}  // namespace
}  // namespace consensus::support
