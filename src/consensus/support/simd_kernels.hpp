// Vectorised kernels for the hot numeric loops of the batched counting
// laws — today the h-majority composition integration (h_majority.cpp),
// whose per-histogram O(a) weighted-product/argmax scan dominates the law
// computation once C(h+a−1, h) is large.
//
// Determinism contract: the scalar fallback and the AVX2 path produce
// BIT-IDENTICAL results. Floating-point products are not associative, so
// both implementations accumulate in the same fixed 4-lane-strided order
// (lane l holds the product of elements l, l+4, l+8, …; lanes combine as
// (l0·l1)·(l2·l3), then the tail multiplies in sequentially). The library's
// cross-platform bit-reproducibility requirement (rng.hpp) therefore holds
// whether or not the running CPU has AVX2 and whether or not the runtime
// toggle is on — the toggle only changes throughput.
//
// The AVX2 path is compiled with a per-function target attribute and
// selected at runtime via CPU detection, so the library still builds and
// runs on any x86-64 baseline (and on non-x86, where only the scalar path
// exists).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace consensus::support {

/// Runtime toggle for the vector paths (benches pit hmaj-simd against
/// hmaj-scalar with it); defaults to enabled. Scalar results are
/// bit-identical, so flipping it mid-run changes throughput only.
void set_simd_kernels_enabled(bool enabled) noexcept;
bool simd_kernels_enabled() noexcept;

/// True when this build on this CPU can actually run a vector path
/// (x86-64 with AVX2 at runtime); the toggle has no effect otherwise.
bool simd_kernels_available() noexcept;

/// Fills w[i·(h+1) + j] = alpha[i]^j · inv_fact[j] for j = 0..h — the
/// per-opinion weight table the composition integration gathers from
/// (inv_fact[j] = 1/j! folds the histogram's factorial denominators into
/// the table, removing a divide from the per-element hot path). `w` is
/// resized to alpha.size()·(h+1).
void build_pow_weight_table(std::span<const double> alpha, unsigned h,
                            std::span<const double> inv_fact,
                            std::vector<double>& w);

/// One histogram's contribution to the h-majority one-round law:
///
///   p    = prefactor · ∏_i w[i·stride + hist[i]]      (4-lane-strided)
///   best = max_i hist[i]
///   acc[i] += p / |{j : hist[j] = best}|  for every i with hist[i] = best
///
/// — i.e. the histogram's probability mass split uniformly over its argmax
/// set, matching HMajority::update's uniform tie-breaking. `hist` has `a`
/// entries, each < stride. Dispatches to AVX2 (gather + lane products)
/// when available and enabled; scalar otherwise, bit-identically.
void accumulate_histogram_term(const double* w, std::size_t stride,
                               const std::uint32_t* hist, std::size_t a,
                               double prefactor, double* acc);

/// Scalar reference implementation (same lane-strided arithmetic); exposed
/// for tests asserting the bit-identity contract.
void accumulate_histogram_term_scalar(const double* w, std::size_t stride,
                                      const std::uint32_t* hist,
                                      std::size_t a, double prefactor,
                                      double* acc);

}  // namespace consensus::support
